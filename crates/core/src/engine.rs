//! The prototype-style KDD engine: real bytes, real devices, real
//! recovery.
//!
//! Where [`crate::policy::KddPolicy`] *counts* I/O for the trace
//! simulations, `KddEngine` *performs* it, playing the role of the
//! paper's kernel prototype (Linux MD + EnhanceIO, §IV-B1):
//!
//! * data lives on a [`RaidArray`] of in-memory member disks;
//! * the cache lives on an [`SsdDevice`] with a page-mapped FTL, so every
//!   write ages real wear counters;
//! * write hits compute a genuine XOR delta against the cached page,
//!   compress it with [`kdd_delta::codec`], stage it in NVRAM and pack it
//!   into DEZ pages behind an `(lba, off, len)` directory;
//! * the metadata log serialises real entries into the metadata partition
//!   at the front of the SSD (Figure 2's layout), and power-failure
//!   recovery *re-reads those pages from flash* to rebuild the primary
//!   map (§III-E1);
//! * SSD failure recovers by RAID resync; HDD failure by
//!   parity-update-then-rebuild (§III-E2).
//!
//! Operations return the simulated device time they consumed (flash times
//! from the FTL model; member-disk operations charged a flat 8 ms random
//! access — the engine measures correctness and relative cost, the
//! discrete-event simulator in `kdd-sim` owns precise timing).

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::config::KddConfig;
use crate::metalog::{CommitBatch, LogEntry, MetaLog};
use crate::staging::StagingBuffer;
use kdd_blockdev::error::{DevError, FaultDomain};
use kdd_blockdev::fault::FaultInjector;
use kdd_blockdev::nvram::Nvram;
use kdd_blockdev::ssd::SsdDevice;
use kdd_cache::policies::PendingRows;
use kdd_cache::setassoc::{InsertOutcome, PageState, SetAssocCache};
use kdd_cache::stats::CacheStats;
use kdd_delta::codec;
use kdd_delta::xor::xor_into;
use kdd_obs::{Completion, HitClass, Recorder, ReqKind, Sample, Stage, StageTimes};
use kdd_raid::array::{RaidArray, RaidCost, RaidError};
use kdd_util::hash::{crc32_update, FastMap};
use kdd_util::units::SimTime;
use kdd_util::PagePool;

/// Flat service time charged per member-disk operation.
const DISK_OP: SimTime = SimTime(8_000_000);

/// Engine-level errors.
#[derive(Debug)]
pub enum EngineError {
    /// SSD-side failure.
    Dev(DevError),
    /// RAID-side failure.
    Raid(RaidError),
    /// Delta decode failure (corrupt DEZ page).
    Codec(codec::CompressError),
    /// Layout problem (SSD too small, corrupt metadata page).
    Layout(String),
    /// Internal bookkeeping contradicted itself (a bug, surfaced as an
    /// error instead of a panic so the engine can fail one request and
    /// keep serving the rest of the array).
    Inconsistent(&'static str),
}

impl From<DevError> for EngineError {
    fn from(e: DevError) -> Self {
        EngineError::Dev(e)
    }
}

impl From<RaidError> for EngineError {
    fn from(e: RaidError) -> Self {
        EngineError::Raid(e)
    }
}

impl From<codec::CompressError> for EngineError {
    fn from(e: codec::CompressError) -> Self {
        EngineError::Codec(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Dev(e) => write!(f, "ssd: {e}"),
            EngineError::Raid(e) => write!(f, "raid: {e}"),
            EngineError::Codec(e) => write!(f, "delta codec: {e}"),
            EngineError::Layout(s) => write!(f, "layout: {s}"),
            EngineError::Inconsistent(s) => write!(f, "internal inconsistency: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Entry state on flash (Figure 3's `state` field, persisted subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Data cached, parity consistent.
    Clean,
    /// Data cached with a pending delta.
    Old,
    /// Mapping removed (tombstone).
    Free,
}

/// Where a committed delta lives inside the DEZ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRef {
    /// DEZ cache slot.
    pub slot: u32,
    /// Byte offset within the DEZ page.
    pub off: u16,
    /// Compressed length in bytes.
    pub len: u16,
}

/// One persistent mapping entry (Figure 3's fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapEntry {
    /// RAID address of the cached page (`lba_raid`, the coalescing key).
    pub lba_raid: u64,
    /// Cache slot (`lba_daz` analogue) holding the data.
    pub slot: u32,
    /// Recorded page state.
    pub state: EntryState,
    /// `(lba_dez, off, len)` for *old* pages whose delta is committed.
    pub dez: Option<DeltaRef>,
}

impl LogEntry for MapEntry {
    fn key(&self) -> u64 {
        self.lba_raid
    }

    fn is_tombstone(&self) -> bool {
        self.state == EntryState::Free
    }
}

/// Serialised entry size on flash.
const ENTRY_BYTES: usize = 22;

/// Metadata page header: `[count: u16][seq: u64][crc: u32]`. The CRC
/// covers the whole page except its own field, so a torn or corrupt log
/// page is detected during the recovery scan rather than silently decoded.
const META_HDR: usize = 14;

/// CRC-32 of a metadata page, skipping the CRC field itself.
fn meta_page_crc(page: &[u8]) -> u32 {
    !crc32_update(crc32_update(!0, &page[..10]), &page[META_HDR..])
}

/// How the engine is currently serving I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Caching through the SSD (the normal KDD path).
    Normal,
    /// The SSD suffered a persistent fault and has no working replacement:
    /// requests pass straight through to the RAID array.
    PassThrough,
}

impl MapEntry {
    fn encode(self) -> [u8; ENTRY_BYTES] {
        let mut b = [0u8; ENTRY_BYTES];
        b[..8].copy_from_slice(&self.lba_raid.to_le_bytes());
        b[8..12].copy_from_slice(&self.slot.to_le_bytes());
        b[12] = match self.state {
            EntryState::Clean => 1,
            EntryState::Old => 2,
            EntryState::Free => 3,
        };
        if let Some(d) = self.dez {
            b[13] = 1;
            b[14..18].copy_from_slice(&d.slot.to_le_bytes());
            b[18..20].copy_from_slice(&d.off.to_le_bytes());
            b[20..22].copy_from_slice(&d.len.to_le_bytes());
        }
        b
    }

    fn decode(b: &[u8]) -> Option<MapEntry> {
        if b.len() < ENTRY_BYTES {
            return None;
        }
        let lba_raid = le_u64(b, 0)?;
        let slot = le_u32(b, 8)?;
        let state = match b.get(12)? {
            1 => EntryState::Clean,
            2 => EntryState::Old,
            3 => EntryState::Free,
            _ => return None,
        };
        let dez = if *b.get(13)? == 1 {
            Some(DeltaRef { slot: le_u32(b, 14)?, off: le_u16(b, 18)?, len: le_u16(b, 20)? })
        } else {
            None
        };
        Some(MapEntry { lba_raid, slot, state, dez })
    }
}

/// Panic-free little-endian field readers for on-flash structures: a short
/// or misaligned page yields `None` (treated as corruption by callers)
/// instead of an indexing panic on the recovery path.
fn le_u64(b: &[u8], at: usize) -> Option<u64> {
    b.get(at..at.checked_add(8)?).and_then(|s| <[u8; 8]>::try_from(s).ok()).map(u64::from_le_bytes)
}

fn le_u32(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at.checked_add(4)?).and_then(|s| <[u8; 4]>::try_from(s).ok()).map(u32::from_le_bytes)
}

fn le_u16(b: &[u8], at: usize) -> Option<u16> {
    b.get(at..at.checked_add(2)?).and_then(|s| <[u8; 2]>::try_from(s).ok()).map(u16::from_le_bytes)
}

/// Where a page's delta currently lives (volatile index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaLoc {
    Staged,
    Dez(DeltaRef),
}

/// In-memory descriptor of one DEZ page: the pages whose valid delta it
/// holds.
#[derive(Debug, Clone, Default)]
struct DezInfo {
    lbas: kdd_util::hash::FastSet<u64>,
}

/// NVRAM-resident state: survives power failure.
#[derive(Debug, Clone)]
struct NvState {
    staging: StagingBuffer<Vec<u8>>,
}

/// One logical page write inside a batched submission
/// ([`KddEngine::write_batch`]).
#[derive(Debug, Clone, Copy)]
pub struct WriteRequest<'a> {
    /// Target RAID address.
    pub lba: u64,
    /// Page-sized payload.
    pub data: &'a [u8],
}

/// The prototype-style engine.
pub struct KddEngine {
    config: KddConfig,
    ssd: SsdDevice,
    raid: RaidArray,
    cache: SetAssocCache,
    nv: Nvram<NvState>,
    metalog: MetaLog<MapEntry>,
    delta_loc: FastMap<u64, DeltaLoc>,
    dez: FastMap<u32, DezInfo>,
    pending_rows: PendingRows,
    stats: CacheStats,
    meta_pages: u64,
    injector: Option<FaultInjector>,
    mode: EngineMode,
    pool: PagePool,
    recorder: Recorder,
    last_class: HitClass,
    last_comp_milli: u32,
    /// Persistent delta compressor: the match-finder scratch is reused
    /// across write hits so the compress path allocates nothing but the
    /// compressed payload itself.
    codec: codec::Compressor,
    /// While true (inside [`KddEngine::write_batch`]), metalog page
    /// commits accumulate in `meta_pending` instead of being persisted
    /// per-entry; the NVRAM inflight copies keep them crash-safe until
    /// the group flush confirms them.
    meta_defer: bool,
    meta_pending: Vec<CommitBatch<MapEntry>>,
    /// Stage-time accumulator for the request currently being dispatched
    /// (`kdd-obs/v2` latency attribution). Reset at the start of every
    /// dispatch attempt so retries report only the acknowledged attempt,
    /// keeping the conservation invariant (stage sum ≤ service time);
    /// background work (cleaner, flush, recovery) swaps it out and
    /// reports through its own span.
    cur_stages: StageTimes,
}

impl KddEngine {
    /// Build an engine: the SSD's first `meta_partition_pages` form the
    /// metadata partition, the rest back the cache slots (Figure 2).
    pub fn new(config: KddConfig, ssd: SsdDevice, raid: RaidArray) -> Result<Self, EngineError> {
        let meta_pages = config.meta_partition_pages();
        let need = meta_pages + config.geometry.total_pages;
        if need > ssd.capacity_pages() {
            return Err(EngineError::Layout(format!(
                "SSD has {} pages; need {need} (meta {meta_pages} + cache {})",
                ssd.capacity_pages(),
                config.geometry.total_pages
            )));
        }
        if config.geometry.page_size != ssd.page_size()
            || config.geometry.page_size != raid.page_size()
        {
            return Err(EngineError::Layout("page sizes must match across devices".into()));
        }
        let grouping = kdd_cache::setassoc::SetGrouping::ParityRow {
            chunk_pages: raid.layout().chunk_pages,
            data_disks: raid.layout().data_disks() as u64,
        };
        let epp = (config.geometry.page_size as usize - META_HDR) / ENTRY_BYTES;
        let mut metalog = MetaLog::new(meta_pages, epp);
        // Keep unconfirmed commits in NVRAM so recovery can redo a torn
        // tail page instead of failing on it.
        metalog.enable_inflight_tracking();
        Ok(KddEngine {
            cache: SetAssocCache::new_grouped(config.geometry, grouping),
            nv: Nvram::new(
                NvState { staging: StagingBuffer::new(config.staging_bytes) },
                config.staging_bytes as u64 * 2,
            ),
            metalog,
            delta_loc: FastMap::default(),
            dez: FastMap::default(),
            pending_rows: PendingRows::default(),
            stats: CacheStats::default(),
            meta_pages,
            injector: None,
            mode: EngineMode::Normal,
            pool: PagePool::new(config.geometry.page_size as usize),
            recorder: Recorder::disabled(),
            last_class: HitClass::ReadMiss,
            last_comp_milli: 0,
            codec: codec::Compressor::new(),
            meta_defer: false,
            meta_pending: Vec::new(),
            cur_stages: StageTimes::new(),
            config,
            ssd,
            raid,
        })
    }

    /// Route every SSD and RAID-member I/O through `injector`, and let the
    /// engine consult it for retry/fallback decisions.
    pub fn attach_fault_injector(&mut self, injector: FaultInjector) {
        // kdd-waiver(KDD006): one-time attach; FaultInjector is an Arc handle, clone is a refcount bump.
        self.ssd.attach_injector(injector.clone());
        // kdd-waiver(KDD006): one-time attach; FaultInjector is an Arc handle, clone is a refcount bump.
        self.raid.attach_injector(injector.clone());
        self.injector = Some(injector);
    }

    /// Attach an observability recorder. Every acknowledged request is
    /// recorded as a lifecycle span; periodic samples are drawn on the
    /// recorder's simulated-time clock. The default recorder is the
    /// disabled no-op, which the request path skips with one branch.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached recorder handle (disabled unless
    /// [`KddEngine::attach_recorder`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Export the full `kdd-obs/v2` snapshot: totals, per-stage latency
    /// attribution, timeseries, wear histogram and the span ring. `None`
    /// when no recorder is attached.
    pub fn obs_snapshot(&self) -> Option<kdd_obs::Json> {
        let mut wear = kdd_obs::Log2Hist::new();
        for e in self.ssd.erase_counts() {
            wear.observe(u64::from(e));
        }
        let fin = self.sample_now();
        self.recorder.export(&fin, &wear)
    }

    /// Draw one gauge sample from current engine state at the recorder's
    /// simulated clock.
    fn sample_now(&self) -> Sample {
        let end = self.ssd.endurance();
        let (head, tail) = self.metalog.counters();
        Sample {
            at: self.recorder.now(),
            cache: self.stats.counters(),
            host_written_bytes: end.host_written_bytes,
            nand_written_bytes: end.nand_written_bytes,
            erases: end.erases,
            max_erase: u64::from(end.max_erase_count),
            stale_rows: self.raid.stale_row_count() as u64,
            backlog_rows: self.pending_rows.pending_rows() as u64,
            staged_deltas: self.nv.get().staging.len() as u64,
            metalog_pages_used: tail.saturating_sub(head),
            metalog_pages_total: self.meta_pages,
        }
    }

    /// Finish one acknowledged request: build the completion from the
    /// stats delta, feed the span ring, and draw a sample if one is due.
    fn observe(&mut self, kind: ReqKind, lba: u64, before: &CacheStats, service: SimTime) {
        let class = if self.mode == EngineMode::PassThrough {
            HitClass::PassThrough
        } else {
            self.last_class
        };
        let after = self.stats;
        let stages = std::mem::take(&mut self.cur_stages);
        self.observe_span(kind, lba, before, &after, class, self.last_comp_milli, service, stages);
    }

    /// Charge `dt` of simulated time to both the caller's clock and the
    /// in-flight span's stage breakdown — the one call every costed
    /// dispatch site makes, so the conservation invariant (stage sum ≤
    /// service time) holds by construction.
    #[inline]
    fn charge_stage(&mut self, stage: Stage, dt: SimTime, t: &mut SimTime) {
        *t += dt;
        self.cur_stages.add(stage, dt);
    }

    /// Record finished background work (cleaner pass, group-commit
    /// flush, failure recovery) as a first-class span on the ring.
    fn note_background(&mut self, stage: Stage, dur: SimTime, used: StageTimes) {
        if dur == SimTime::ZERO && used.is_zero() {
            return;
        }
        if self.recorder.record_background(stage, dur, used) {
            let s = self.sample_now();
            self.recorder.push_sample(s);
        }
    }

    /// Span emission with explicit before/after stats: batched submissions
    /// snapshot both at dispatch time and emit all spans after the group
    /// flush, so each span's counter deltas cover exactly its own request.
    #[allow(clippy::too_many_arguments)]
    fn observe_span(
        &mut self,
        kind: ReqKind,
        lba: u64,
        before: &CacheStats,
        after: &CacheStats,
        class: HitClass,
        comp_milli: u32,
        service: SimTime,
        stages: StageTimes,
    ) {
        let d32 = |now: u64, was: u64| u32::try_from(now.saturating_sub(was)).unwrap_or(u32::MAX);
        let mut c = Completion::new(kind, lba, class, service);
        c.stages = stages;
        c.ssd_reads = d32(after.ssd_reads, before.ssd_reads);
        c.ssd_writes = d32(after.ssd_writes_pages(), before.ssd_writes_pages());
        c.raid_reads = d32(after.raid_reads, before.raid_reads);
        c.raid_writes = d32(after.raid_writes, before.raid_writes);
        c.faults = d32(after.faults_observed, before.faults_observed);
        c.retries = d32(after.fault_retries, before.fault_retries);
        if kind == ReqKind::Write {
            c.comp_milli = comp_milli;
        }
        if self.recorder.record(c) {
            let s = self.sample_now();
            self.recorder.push_sample(s);
        }
    }

    /// Current serving mode (normal caching vs. pass-through after a
    /// persistent SSD fault).
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Cumulative cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The SSD backing the cache (endurance inspection).
    pub fn ssd(&self) -> &SsdDevice {
        &self.ssd
    }

    /// The RAID array underneath (stale-row inspection).
    pub fn raid(&self) -> &RaidArray {
        &self.raid
    }

    /// Mutable RAID access for fault injection in tests and examples.
    pub fn raid_mut(&mut self) -> &mut RaidArray {
        &mut self.raid
    }

    /// Rows with delayed parity.
    pub fn pending_row_count(&self) -> usize {
        self.pending_rows.pending_rows()
    }

    /// Deltas currently staged in NVRAM.
    pub fn staged_deltas(&self) -> usize {
        self.nv.get().staging.len()
    }

    /// Cache-page size in bytes (every request payload must match it).
    pub fn page_size(&self) -> usize {
        self.config.geometry.page_size as usize
    }

    #[inline]
    fn slot_lpn(&self, slot: u32) -> u64 {
        self.meta_pages + slot as u64
    }

    // ---- metadata persistence -------------------------------------------

    fn persist_batches(
        &mut self,
        batches: Vec<CommitBatch<MapEntry>>,
        t: &mut SimTime,
    ) -> Result<(), EngineError> {
        for batch in batches {
            let mut page = self.pool.acquire();
            page[..2].copy_from_slice(&(batch.entries.len() as u16).to_le_bytes());
            page[2..10].copy_from_slice(&batch.seq.to_le_bytes());
            for (i, e) in batch.entries.iter().enumerate() {
                let off = META_HDR + i * ENTRY_BYTES;
                page[off..off + ENTRY_BYTES].copy_from_slice(&e.encode());
            }
            let crc = meta_page_crc(&page);
            page[10..14].copy_from_slice(&crc.to_le_bytes());
            let dt = self.ssd.write_page(batch.slot, &page)?;
            self.charge_stage(Stage::MetalogCommit, dt, t);
            self.pool.release(page);
            self.stats.ssd_meta_writes += 1;
            // Only now is the page durable; recovery no longer needs the
            // NVRAM in-flight copy.
            self.metalog.confirm(batch.seq);
        }
        Ok(())
    }

    /// Persist page commits now, or park them for the group flush while a
    /// batched submission is in flight. Deferred batches stay crash-safe:
    /// their entries live in the metalog's NVRAM buffer/inflight list until
    /// [`KddEngine::flush_group`] confirms the flash writes.
    fn queue_batches(
        &mut self,
        batches: Vec<CommitBatch<MapEntry>>,
        t: &mut SimTime,
    ) -> Result<(), EngineError> {
        if self.meta_defer {
            self.meta_pending.extend(batches);
            Ok(())
        } else {
            self.persist_batches(batches, t)
        }
    }

    /// Write every parked metalog page to flash — the group-commit flush
    /// ending a batched submission.
    fn flush_group(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        if self.meta_pending.is_empty() {
            return Ok(());
        }
        let batches = std::mem::take(&mut self.meta_pending);
        self.persist_batches(batches, t)
    }

    fn log_entry(&mut self, e: MapEntry, t: &mut SimTime) -> Result<(), EngineError> {
        let batches = self.metalog.push(e);
        self.queue_batches(batches, t)
    }

    // ---- delta plumbing ---------------------------------------------------

    /// Drop `lba`'s membership in the DEZ page `r` points into, trimming
    /// the page once its last live delta is gone.
    fn release_dez_ref(&mut self, lba: u64, r: DeltaRef) -> Result<(), EngineError> {
        let Some(info) = self.dez.get_mut(&r.slot) else {
            // Accounting says the ref exists but the page record is gone:
            // nothing to release. Flag in debug, degrade to a no-op here.
            debug_assert!(false, "DEZ accounting broken");
            return Ok(());
        };
        info.lbas.remove(&lba);
        if info.lbas.is_empty() {
            self.dez.remove(&r.slot);
            self.ssd.trim_page(self.slot_lpn(r.slot))?;
            self.cache.free_slot(r.slot);
        }
        Ok(())
    }

    fn invalidate_delta(&mut self, lba: u64) -> Result<(), EngineError> {
        match self.delta_loc.remove(&lba) {
            Some(DeltaLoc::Staged) => {
                self.nv.get_mut().staging.remove(lba);
            }
            Some(DeltaLoc::Dez(r)) => self.release_dez_ref(lba, r)?,
            None => {}
        }
        Ok(())
    }

    /// Pack the staged deltas into DEZ pages: each page carries a
    /// directory of `(lba, off, len)` records followed by the compressed
    /// payloads. Usually one page suffices (the staging buffer is one page
    /// of *payload*); the directory overhead can spill a few deltas into a
    /// second page.
    fn commit_staging(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        if self.nv.get().staging.is_empty() {
            return Ok(());
        }
        let ps = self.page_size();
        // Snapshot instead of draining: a delta leaves NVRAM only once the
        // DEZ page holding it is durably on flash and logged, so a crash
        // mid-commit never loses an acknowledged write.
        let mut queue: std::collections::VecDeque<(u64, Vec<u8>)> =
            // kdd-waiver(KDD006): NVRAM payloads must outlive the borrow on `self.nv` while the DEZ writes mutate the engine.
            self.nv.get().staging.snapshot().map(|(lba, payload)| (lba, payload.clone())).collect();
        while !queue.is_empty() {
            let Some(slot) = self.alloc_dez_slot(t)? else {
                // Fully pinned cache: the rest simply stays staged.
                return Ok(());
            };
            // Greedy fill: each delta costs 12B of directory + its bytes.
            let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut used = 2usize;
            while let Some((_, payload)) = queue.front() {
                if used + 12 + payload.len() > ps {
                    break;
                }
                used += 12 + payload.len();
                let Some(item) = queue.pop_front() else { break };
                batch.push(item);
            }
            assert!(!batch.is_empty(), "one delta must always fit a DEZ page");
            let mut page = self.pool.acquire();
            page[..2].copy_from_slice(&(batch.len() as u16).to_le_bytes());
            let mut dir_off = 2;
            let mut data_off = 2 + batch.len() * 12;
            let mut refs = Vec::with_capacity(batch.len());
            for (lba, payload) in &batch {
                let len = payload.len();
                page[dir_off..dir_off + 8].copy_from_slice(&lba.to_le_bytes());
                page[dir_off + 8..dir_off + 10].copy_from_slice(&(data_off as u16).to_le_bytes());
                page[dir_off + 10..dir_off + 12].copy_from_slice(&(len as u16).to_le_bytes());
                page[data_off..data_off + len].copy_from_slice(payload);
                refs.push((*lba, DeltaRef { slot, off: data_off as u16, len: len as u16 }));
                dir_off += 12;
                data_off += len;
            }
            let dt = self.ssd.write_page(self.slot_lpn(slot), &page)?;
            self.charge_stage(Stage::StagingCommit, dt, t);
            self.pool.release(page);
            self.stats.ssd_delta_writes += 1;
            let mut info = DezInfo::default();
            for (lba, _) in &batch {
                info.lbas.insert(*lba);
            }
            self.dez.insert(slot, info);
            // Log the whole DEZ page's mappings as one metalog group, then
            // drop the NVRAM copies. Logging precedes every removal: if the
            // crash lands in between, recovery sees both and the staged
            // copies (same bytes) simply supersede the DEZ references.
            let mut entries = Vec::with_capacity(refs.len());
            for (lba, r) in &refs {
                let slot_of = self
                    .cache
                    .lookup(*lba)
                    .ok_or(EngineError::Inconsistent("old page must be cached"))?;
                entries.push(MapEntry {
                    lba_raid: *lba,
                    slot: slot_of,
                    state: EntryState::Old,
                    dez: Some(*r),
                });
            }
            let batches = self.metalog.push_group(entries);
            self.queue_batches(batches, t)?;
            for (lba, r) in refs {
                self.nv.get_mut().staging.remove(lba);
                self.delta_loc.insert(lba, DeltaLoc::Dez(r));
            }
        }
        Ok(())
    }

    fn alloc_dez_slot(&mut self, t: &mut SimTime) -> Result<Option<u32>, EngineError> {
        if let Some(slot) = self.cache.alloc_delta_slot() {
            return Ok(Some(slot));
        }
        let victim = self
            .cache
            .iter_mapped()
            .find(|&(_, _, s)| s == PageState::Clean)
            .map(|(slot, lba, _)| (slot, lba));
        if let Some((slot, lba)) = victim {
            self.evict_clean(slot, lba, t)?;
            return Ok(self.cache.alloc_delta_slot());
        }
        Ok(None)
    }

    fn evict_clean(&mut self, slot: u32, lba: u64, t: &mut SimTime) -> Result<(), EngineError> {
        // Tombstone first: recovery must never map a trimmed page.
        self.log_entry(MapEntry { lba_raid: lba, slot, state: EntryState::Free, dez: None }, t)?;
        self.ssd.trim_page(self.slot_lpn(slot))?;
        self.cache.free_slot(slot);
        self.stats.evictions += 1;
        Ok(())
    }

    /// Fetch the staged or committed compressed delta for an *old* page.
    fn read_delta(&mut self, lba: u64, t: &mut SimTime) -> Result<Vec<u8>, EngineError> {
        match self.delta_loc.get(&lba) {
            Some(DeltaLoc::Staged) => Ok(self
                .nv
                .get()
                .staging
                .get(lba)
                .ok_or(EngineError::Inconsistent("staged delta index broken"))?
                // kdd-waiver(KDD006): the compressed payload is returned to the caller by value; a copy is inherent to the API.
                .clone()),
            Some(DeltaLoc::Dez(r)) => {
                let r = *r;
                let mut page = self.pool.acquire();
                let dt = self.ssd.read_page(self.slot_lpn(r.slot), &mut page)?;
                self.charge_stage(Stage::SsdRead, dt, t);
                // kdd-waiver(KDD006): sub-page payload handed to the caller.
                let payload = page[r.off as usize..r.off as usize + r.len as usize].to_vec();
                self.pool.release(page);
                Ok(payload)
            }
            None => Err(EngineError::Inconsistent("old page has no delta")),
        }
    }

    /// Current content of a cached page: for *old* pages, base ⊕ delta —
    /// §III-A's read-hit combine.
    fn read_cached(
        &mut self,
        lba: u64,
        slot: u32,
        t: &mut SimTime,
    ) -> Result<Vec<u8>, EngineError> {
        // kdd-waiver(KDD006): the page is returned to the caller by value.
        let mut data = vec![0u8; self.page_size()];
        let dt = self.ssd.read_page(self.slot_lpn(slot), &mut data)?;
        self.charge_stage(Stage::SsdRead, dt, t);
        if self.cache.state(slot) == PageState::Old {
            let comp = self.read_delta(lba, t)?;
            let delta = codec::decompress(&comp)?;
            // "it takes only tens of microseconds to decompress the delta
            // and combine it with the data" (§IV-B2).
            self.charge_stage(Stage::DeltaDecode, SimTime::from_micros(20), t);
            xor_into(&mut data, &delta);
        }
        Ok(data)
    }

    // ---- public I/O -------------------------------------------------------

    /// The device fault underlying an engine error, if any.
    fn fault_dev(e: &EngineError) -> Option<&DevError> {
        match e {
            EngineError::Dev(d) => Some(d),
            EngineError::Raid(RaidError::Dev(d)) => Some(d),
            _ => None,
        }
    }

    /// Fall back after a persistent SSD fault: resync the RAID (member
    /// data is always current — RPO 0), swap in a spare, and if the
    /// injector says even the spare is dead, serve pass-through from RAID.
    fn ssd_fault_fallback(&mut self) -> Result<(), EngineError> {
        self.recover_from_ssd_failure()?;
        let dead = self.injector.as_ref().is_some_and(|inj| inj.is_dead(FaultDomain::Ssd));
        if dead {
            self.mode = EngineMode::PassThrough;
        }
        self.stats.fault_fallbacks += 1;
        Ok(())
    }

    /// Whether `e` warrants one retry (a transient device fault). Power
    /// loss is never retried: the machine is notionally off.
    fn retryable(e: &EngineError) -> bool {
        Self::fault_dev(e).is_some_and(|d| d.is_transient())
    }

    /// Whether `e` is a persistent SSD-side fault that the engine should
    /// survive by falling back to pass-through RAID.
    fn ssd_persistent(e: &EngineError) -> bool {
        matches!(
            Self::fault_dev(e),
            Some(DevError::Failed { device: FaultDomain::Ssd, transient: false })
        )
    }

    /// Whether `e` is a member-disk death. One retry suffices: the array
    /// folds injector-declared drops into its failure state on entry and
    /// the retried operation runs degraded (RAID-5/6 reconstruction).
    fn disk_persistent(e: &EngineError) -> bool {
        matches!(
            Self::fault_dev(e),
            Some(DevError::Failed { device: FaultDomain::Disk(_), transient: false })
        ) || matches!(e, EngineError::Raid(RaidError::DiskFailed { .. }))
    }

    /// Read one page: `(data, simulated service time)`.
    ///
    /// Fault policy: a transient device fault is retried once; a
    /// persistent SSD fault triggers [`KddEngine::recover_from_ssd_failure`]
    /// and, when no working spare exists, pass-through mode. Power loss is
    /// surfaced unchanged — only [`KddEngine::power_cycle`] recovers it.
    pub fn read(&mut self, lba: u64) -> Result<(Vec<u8>, SimTime), EngineError> {
        let before = self.recorder.is_enabled().then_some(self.stats);
        let result = self.read_dispatch(lba);
        if let (Some(before), Ok((_, t))) = (before, &result) {
            self.observe(ReqKind::Read, lba, &before, *t);
        }
        result
    }

    fn read_dispatch(&mut self, lba: u64) -> Result<(Vec<u8>, SimTime), EngineError> {
        if self.mode == EngineMode::PassThrough {
            return self.raid_read(lba);
        }
        match self.read_inner(lba) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.stats.faults_observed += 1;
                if Self::retryable(&e) || Self::disk_persistent(&e) {
                    self.stats.fault_retries += 1;
                    self.read_inner(lba)
                } else if Self::ssd_persistent(&e) {
                    self.ssd_fault_fallback()?;
                    if self.mode == EngineMode::PassThrough {
                        self.raid_read(lba)
                    } else {
                        self.read_inner(lba)
                    }
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Write one page; returns the simulated service time. Same fault
    /// policy as [`KddEngine::read`].
    pub fn write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime, EngineError> {
        let before = self.recorder.is_enabled().then_some(self.stats);
        let result = self.write_dispatch(lba, data);
        if let (Some(before), Ok(t)) = (before, &result) {
            self.observe(ReqKind::Write, lba, &before, *t);
        }
        result
    }

    /// Submit a vector of writes as one **group commit**: every request
    /// runs the normal write path (delta staging, fault retry policy, and
    /// NVRAM durability are identical to [`KddEngine::write`]), but metalog
    /// page persistence is deferred and flushed once at the end of the
    /// batch, so one flash write can cover mapping updates from many
    /// requests. Returns the per-request simulated service times; the
    /// group flush's cost is charged to the final request (it is the
    /// batch's "fsync").
    ///
    /// Crash safety is unchanged: entries are NVRAM-durable from the
    /// moment their request is acknowledged (metalog buffer + inflight
    /// redo list), so a power cut mid-batch loses nothing acknowledged —
    /// recovery heals unwritten or torn pages from the inflight copies.
    /// On error the group flush still runs for the already-dispatched
    /// prefix before the error is surfaced; requests after the failing one
    /// are not attempted.
    pub fn write_batch(&mut self, reqs: &[WriteRequest<'_>]) -> Result<Vec<SimTime>, EngineError> {
        struct PendingSpan {
            lba: u64,
            before: CacheStats,
            after: CacheStats,
            class: HitClass,
            comp_milli: u32,
            stages: StageTimes,
        }
        let observing = self.recorder.is_enabled();
        let mut times: Vec<SimTime> = Vec::with_capacity(reqs.len());
        let mut spans: Vec<PendingSpan> =
            Vec::with_capacity(if observing { reqs.len() } else { 0 });
        self.meta_defer = true;
        let mut failure = None;
        for r in reqs {
            let before = self.stats;
            match self.write_dispatch(r.lba, r.data) {
                Ok(t) => {
                    times.push(t);
                    if observing {
                        let class = if self.mode == EngineMode::PassThrough {
                            HitClass::PassThrough
                        } else {
                            self.last_class
                        };
                        spans.push(PendingSpan {
                            lba: r.lba,
                            before,
                            after: self.stats,
                            class,
                            comp_milli: self.last_comp_milli,
                            stages: std::mem::take(&mut self.cur_stages),
                        });
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.meta_defer = false;
        let mut tg = SimTime::ZERO;
        self.cur_stages = StageTimes::new();
        let flush = self.flush_group(&mut tg);
        let flush_stages = std::mem::take(&mut self.cur_stages);
        if let Some(e) = failure {
            // The dispatch failure is the actionable error; a flush failure
            // here is a second symptom of the same fault (the pages stay on
            // the inflight redo list either way).
            return Err(e);
        }
        flush?;
        if let Some(last) = times.last_mut() {
            *last += tg;
        }
        if let Some(last) = spans.last_mut() {
            // The group flush's meta writes belong to the batch; fold them
            // (counters and stage times alike) into the final request's
            // span, whose service time already carries the flush cost.
            last.after = self.stats;
            last.stages.merge(&flush_stages);
        }
        for (s, t) in spans.iter().zip(times.iter()) {
            let (before, after) = (s.before, s.after);
            self.observe_span(
                ReqKind::Write,
                s.lba,
                &before,
                &after,
                s.class,
                s.comp_milli,
                *t,
                s.stages,
            );
        }
        Ok(times)
    }

    fn write_dispatch(&mut self, lba: u64, data: &[u8]) -> Result<SimTime, EngineError> {
        if self.mode == EngineMode::PassThrough {
            return self.raid_write(lba, data);
        }
        match self.write_inner(lba, data) {
            Ok(t) => Ok(t),
            Err(e) => {
                self.stats.faults_observed += 1;
                if Self::retryable(&e) || Self::disk_persistent(&e) {
                    self.stats.fault_retries += 1;
                    self.write_inner(lba, data)
                } else if Self::ssd_persistent(&e) {
                    self.ssd_fault_fallback()?;
                    if self.mode == EngineMode::PassThrough {
                        self.raid_write(lba, data)
                    } else {
                        self.write_inner(lba, data)
                    }
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Pass-through read straight from the RAID array.
    fn raid_read(&mut self, lba: u64) -> Result<(Vec<u8>, SimTime), EngineError> {
        self.cur_stages = StageTimes::new();
        let mut t = SimTime::ZERO;
        // kdd-waiver(KDD006): the page is returned to the caller by value.
        let mut buf = vec![0u8; self.page_size()];
        let cost = self.raid.read_page(lba, &mut buf)?;
        self.charge_raid(&cost);
        self.bump(true, false);
        self.charge_stage(Stage::RaidRead, DISK_OP * cost.reads().max(1) as u64, &mut t);
        Ok((buf, t))
    }

    /// Pass-through write straight to the RAID array (full parity update).
    fn raid_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime, EngineError> {
        self.cur_stages = StageTimes::new();
        let mut t = SimTime::ZERO;
        let cost = self.raid.write_page(lba, data)?;
        self.charge_raid(&cost);
        self.bump(false, false);
        self.charge_stage(Stage::RaidWrite, DISK_OP * 2 * cost.writes().max(1) as u64, &mut t);
        Ok(t)
    }

    fn read_inner(&mut self, lba: u64) -> Result<(Vec<u8>, SimTime), EngineError> {
        self.cur_stages = StageTimes::new();
        let mut t = SimTime::ZERO;
        let (hit, data) = match self.cache.lookup(lba) {
            Some(slot) => {
                self.cache.touch(slot);
                self.stats.ssd_reads += 1;
                (true, self.read_cached(lba, slot, &mut t)?)
            }
            None => {
                // kdd-waiver(KDD006): the page is the read's return value.
                let mut buf = vec![0u8; self.page_size()];
                let cost = self.raid.read_page(lba, &mut buf)?;
                self.charge_raid(&cost);
                self.charge_stage(Stage::RaidRead, DISK_OP * cost.reads().max(1) as u64, &mut t);
                self.fill_clean(lba, &buf, &mut t)?;
                (false, buf)
            }
        };
        self.bump(true, hit);
        Ok((data, t))
    }

    fn write_inner(&mut self, lba: u64, data: &[u8]) -> Result<SimTime, EngineError> {
        assert_eq!(data.len(), self.page_size(), "writes are page-granular");
        self.cur_stages = StageTimes::new();
        let mut t = SimTime::ZERO;
        self.last_comp_milli = 0;
        let hit = match self.cache.lookup(lba) {
            Some(slot) => {
                // THE KDD WRITE HIT: delta to NVRAM, data to RAID without
                // a parity update.
                self.last_class = HitClass::WriteHit;
                self.cache.touch(slot);
                let mut delta = self.pool.acquire();
                let dt = self.ssd.read_page(self.slot_lpn(slot), &mut delta)?;
                self.charge_stage(Stage::SsdRead, dt, &mut t);
                xor_into(&mut delta, data); // base ⊕ new
                let comp = self.codec.compress(&delta);
                self.last_comp_milli = ((comp.len() * 1000) / self.page_size()) as u32;
                self.pool.release(delta);
                // Compression CPU cost.
                self.charge_stage(Stage::DeltaEncode, SimTime::from_micros(30), &mut t);
                // A delta must fit a DEZ page alongside its directory
                // record; pages that XOR-compress worse than that are
                // treated as incompressible (full write-through below).
                let compressible = comp.len() + 14 <= self.page_size()
                    && comp.len() as u32 <= self.nv.get().staging.capacity_bytes();
                if compressible && !self.nv.get().staging.fits(lba, &comp) {
                    self.commit_staging(&mut t)?;
                }
                // Committing the staged deltas may allocate DEZ pages by
                // evicting *clean* cache pages — and this page is still
                // clean while its first delta is only being prepared, so
                // the victim can be the very page being written. The delta
                // path needs the cached base (reads combine base ⊕ delta),
                // so when the base is gone, finish as a conventional miss.
                let Some(slot) = self.cache.lookup(lba) else {
                    self.write_conventional_miss(lba, data, &mut t)?;
                    self.bump(false, false);
                    return Ok(t);
                };
                // The delta path needs the target member alive: the data
                // half of "data + delta" lives on exactly that disk. When
                // it is dead (or dies mid-dispatch), fall through to the
                // conventional write, whose reconstruct-write stores the
                // data in the surviving members' parity.
                let dispatched = if compressible && self.nv.get().staging.fits(lba, &comp) {
                    // Dispatch the data to the member disk *before*
                    // touching any NVRAM/volatile state: if the write is
                    // cut short, the previous delta still matches the
                    // previous member content and recovery stays
                    // consistent.
                    match self.raid.write_no_parity_update(lba, data) {
                        Ok(cost) => {
                            self.charge_raid(&cost);
                            self.last_class = HitClass::WriteHitDelta;
                            self.charge_stage(
                                Stage::RaidWrite,
                                DISK_OP * cost.writes() as u64,
                                &mut t,
                            );
                            if self.cache.state(slot) == PageState::Clean {
                                self.cache.set_state(slot, PageState::Old);
                            }
                            // Insert the new delta (coalescing replaces the
                            // staged one in place) before releasing any
                            // committed copy, so at every instant one valid
                            // delta exists.
                            let old_loc = self.delta_loc.insert(lba, DeltaLoc::Staged);
                            self.nv.get_mut().staging.insert(lba, comp);
                            if let Some(DeltaLoc::Dez(r)) = old_loc {
                                self.release_dez_ref(lba, r)?;
                            }
                            let row = self.raid.layout().row_of(lba);
                            self.pending_rows.add(row, lba);
                            true
                        }
                        Err(RaidError::DiskFailed { .. })
                        | Err(RaidError::Dev(DevError::Failed { transient: false, .. })) => false,
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    false
                };
                if !dispatched {
                    // Incompressible delta or fully pinned cache: fall
                    // back to a conventional parity write. Detach this
                    // page from the pending set first (its delta is gone),
                    // resolve any *other* pending deltas of the row, then
                    // write through.
                    let row = self.raid.layout().row_of(lba);
                    let mut rest = self.pending_rows.take_row(row);
                    rest.retain(|&l| l != lba);
                    for &l in &rest {
                        self.pending_rows.add(row, l);
                    }
                    // On a stale row the array reconstructs parity from
                    // current member data, absorbing every pending delta
                    // of the row — clean_row afterwards only reclaims
                    // (its parity step is skipped once staleness cleared).
                    let cost = self.raid.write_page(lba, data)?;
                    self.charge_raid(&cost);
                    self.last_class = HitClass::WriteHitThrough;
                    self.charge_stage(
                        Stage::RaidWrite,
                        DISK_OP * 2 * cost.writes().max(1) as u64,
                        &mut t,
                    );
                    // Tombstone the old mapping before reclaiming its
                    // flash copies, then re-insert the new version clean.
                    // A crash in between leaves the lba uncached with the
                    // data already safe on RAID.
                    self.log_entry(
                        MapEntry { lba_raid: lba, slot, state: EntryState::Free, dez: None },
                        &mut t,
                    )?;
                    self.invalidate_delta(lba)?;
                    self.ssd.trim_page(self.slot_lpn(slot))?;
                    self.cache.free_slot(slot);
                    self.fill_clean(lba, data, &mut t)?;
                    self.clean_row(row, &mut t)?;
                }
                self.maybe_clean(&mut t)?;
                true
            }
            None => {
                self.write_conventional_miss(lba, data, &mut t)?;
                false
            }
        };
        self.bump(false, hit);
        Ok(t)
    }

    /// Conventional write miss (§III-A): cache in DAZ, write to RAID with
    /// the normal parity update. If this row has delayed parity, the
    /// array's write would reconstruct it from current member data and
    /// silently absorb the pending deltas — repair and reclaim the row
    /// *first* so the pending bookkeeping cannot double-apply them later.
    fn write_conventional_miss(
        &mut self,
        lba: u64,
        data: &[u8],
        t: &mut SimTime,
    ) -> Result<(), EngineError> {
        let row = self.raid.layout().row_of(lba);
        self.clean_row(row, t)?;
        let cost = self.raid.write_page(lba, data)?;
        self.charge_raid(&cost);
        // Read round + write round.
        self.charge_stage(Stage::RaidWrite, DISK_OP * 2, t);
        self.fill_clean(lba, data, t)
    }

    fn fill_clean(&mut self, lba: u64, data: &[u8], t: &mut SimTime) -> Result<(), EngineError> {
        loop {
            match self.cache.insert(lba, PageState::Clean, |s| s == PageState::Clean) {
                InsertOutcome::Inserted { slot } => {
                    let dt = self.ssd.write_page(self.slot_lpn(slot), data)?;
                    self.charge_stage(Stage::SsdWrite, dt, t);
                    self.stats.ssd_data_writes += 1;
                    self.log_entry(
                        MapEntry { lba_raid: lba, slot, state: EntryState::Clean, dez: None },
                        t,
                    )?;
                    return Ok(());
                }
                InsertOutcome::Evicted { slot, victim_lba, .. } => {
                    self.stats.evictions += 1;
                    self.log_entry(
                        MapEntry { lba_raid: victim_lba, slot, state: EntryState::Free, dez: None },
                        t,
                    )?;
                    let dt = self.ssd.write_page(self.slot_lpn(slot), data)?;
                    self.charge_stage(Stage::SsdWrite, dt, t);
                    self.stats.ssd_data_writes += 1;
                    self.log_entry(
                        MapEntry { lba_raid: lba, slot, state: EntryState::Clean, dez: None },
                        t,
                    )?;
                    return Ok(());
                }
                InsertOutcome::NoRoom => {
                    // Unpin one pending row of this set and retry; bypass
                    // when nothing in the set can be cleaned.
                    let set = self.cache.set_of_lba(lba);
                    if !self.clean_one_row_in_set(set, t)? {
                        return Ok(()); // bypass the cache
                    }
                }
            }
        }
    }

    /// Clean the oldest pending row whose pages map to `set`; false when
    /// none exists.
    fn clean_one_row_in_set(&mut self, set: usize, t: &mut SimTime) -> Result<bool, EngineError> {
        let row = self.pending_rows.row_ids().into_iter().find(|&row| {
            self.raid
                .layout()
                .row_lpns(row)
                .first()
                .is_some_and(|&l| self.cache.set_of_lba(l) == set)
        });
        match row {
            Some(row) => {
                self.clean_row(row, t)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bump(&mut self, is_read: bool, hit: bool) {
        match (is_read, hit) {
            (true, true) => {
                self.stats.read_hits += 1;
                self.last_class = HitClass::ReadHit;
            }
            (true, false) => {
                self.stats.read_misses += 1;
                self.last_class = HitClass::ReadMiss;
            }
            // Write hits refine themselves into delta/through inside
            // `write_inner`; don't clobber that here.
            (false, true) => self.stats.write_hits += 1,
            (false, false) => {
                self.stats.write_misses += 1;
                self.last_class = HitClass::WriteMiss;
            }
        }
    }

    /// Fold one RAID operation's member-disk cost into the counters.
    fn charge_raid(&mut self, cost: &RaidCost) {
        self.stats.raid_reads += cost.reads() as u64;
        self.stats.raid_writes += cost.writes() as u64;
    }

    fn maybe_clean(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let trigger = self.config.clean_trigger_slots();
        let pinned =
            self.cache.count_state(PageState::Old) + self.cache.count_state(PageState::Delta);
        if pinned as u64 * 4 >= trigger * 3 {
            self.compact_dez(t)?;
        }
        let pinned =
            self.cache.count_state(PageState::Old) + self.cache.count_state(PageState::Delta);
        if pinned as u64 >= trigger {
            self.clean_some(t)?;
        }
        Ok(())
    }

    /// Threshold cleaning: repair and reclaim oldest-stale rows first,
    /// stopping just under the trigger so recently-written hot pages keep
    /// their delta path (mirrors the accounting policy).
    fn clean_some(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let low = self.config.clean_trigger_slots() * 7 / 8;
        loop {
            let pinned = (self.cache.count_state(PageState::Old)
                + self.cache.count_state(PageState::Delta)) as u64;
            if pinned <= low {
                break;
            }
            let Some(row) = self.pending_rows.oldest_row() else { break };
            self.clean_row(row, t)?;
        }
        self.stats.cleanings += 1;
        Ok(())
    }

    /// Live compressed bytes in one DEZ page.
    fn dez_live_bytes(&self, slot: u32) -> u32 {
        self.dez
            .get(&slot)
            .map(|info| {
                info.lbas
                    .iter()
                    .map(|lba| match self.delta_loc.get(lba) {
                        Some(DeltaLoc::Dez(r)) if r.slot == slot => r.len as u32,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Log-structured DEZ compaction (pressure-driven, as in the
    /// accounting policy): merge the two emptiest pages — read both,
    /// repack their live deltas into the destination slot, free the
    /// source — while utilisation is under 85 % and a merge fits.
    fn compact_dez(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let ps = self.page_size();
        loop {
            if self.dez.len() < 4 {
                return Ok(());
            }
            let live: u64 = self.dez.keys().map(|&s| self.dez_live_bytes(s) as u64).sum();
            if live * 100 >= self.dez.len() as u64 * ps as u64 * 85 {
                return Ok(());
            }
            let mut pages: Vec<(u32, u32, usize)> = self
                .dez
                .iter()
                .map(|(&s, info)| (s, self.dez_live_bytes(s), info.lbas.len()))
                .collect();
            pages.sort_by_key(|&(_, b, _)| b);
            let (dst, db, dn) = pages[0];
            let (src, sb, sn) = pages[1];
            // Fit check: both payloads plus the merged directory.
            if 2 + (dn + sn) * 12 + db as usize + sb as usize > ps {
                return Ok(());
            }
            // Gather live deltas from both pages.
            let mut deltas: Vec<(u64, Vec<u8>)> = Vec::with_capacity(dn + sn);
            for slot in [dst, src] {
                let lbas: Vec<u64> = self.dez[&slot].lbas.iter().copied().collect();
                for lba in lbas {
                    let payload = self.read_delta(lba, t)?;
                    deltas.push((lba, payload));
                }
            }
            // Repack into the destination slot.
            let mut page = self.pool.acquire();
            page[..2].copy_from_slice(&(deltas.len() as u16).to_le_bytes());
            let mut dir_off = 2;
            let mut data_off = 2 + deltas.len() * 12;
            let mut info = DezInfo::default();
            for (lba, payload) in &deltas {
                let len = payload.len();
                page[dir_off..dir_off + 8].copy_from_slice(&lba.to_le_bytes());
                page[dir_off + 8..dir_off + 10].copy_from_slice(&(data_off as u16).to_le_bytes());
                page[dir_off + 10..dir_off + 12].copy_from_slice(&(len as u16).to_le_bytes());
                page[data_off..data_off + len].copy_from_slice(payload);
                self.delta_loc.insert(
                    *lba,
                    DeltaLoc::Dez(DeltaRef { slot: dst, off: data_off as u16, len: len as u16 }),
                );
                info.lbas.insert(*lba);
                dir_off += 12;
                data_off += len;
            }
            let dt = self.ssd.write_page(self.slot_lpn(dst), &page)?;
            self.charge_stage(Stage::StagingCommit, dt, t);
            self.pool.release(page);
            self.stats.ssd_delta_writes += 1;
            self.dez.insert(dst, info);
            // Retire the source page.
            self.dez.remove(&src);
            self.ssd.trim_page(self.slot_lpn(src))?;
            self.cache.free_slot(src);
            // Re-log the moved mappings (offsets changed).
            let moved: Vec<u64> = deltas.iter().map(|(l, _)| *l).collect();
            for lba in moved {
                let slot_of = self
                    .cache
                    .lookup(lba)
                    .ok_or(EngineError::Inconsistent("old page must be cached"))?;
                let r = match self.delta_loc.get(&lba) {
                    Some(DeltaLoc::Dez(r)) => *r,
                    Some(DeltaLoc::Staged) | None => continue,
                };
                self.log_entry(
                    MapEntry { lba_raid: lba, slot: slot_of, state: EntryState::Old, dez: Some(r) },
                    t,
                )?;
            }
        }
    }

    /// The cleaning pass (§III-D): repair every stale row (reconstruct-
    /// write when the whole row is cached, read-modify-write otherwise),
    /// then reclaim *old* pages and invalidate their deltas. Recorded as
    /// a first-class background span (`cleaner_pass`) with its own stage
    /// breakdown, isolated from any in-flight request's accumulator.
    pub fn clean(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let saved = std::mem::take(&mut self.cur_stages);
        let t0 = *t;
        let result = self.clean_pass(t);
        let used = std::mem::replace(&mut self.cur_stages, saved);
        self.note_background(Stage::CleanerPass, t.saturating_sub(t0), used);
        result
    }

    fn clean_pass(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let rows: Vec<u64> = self.pending_rows.row_ids();
        for row in rows {
            self.clean_row(row, t)?;
        }
        self.stats.cleanings += 1;
        Ok(())
    }

    /// Repair one row and reclaim its old/delta pages.
    fn clean_row(&mut self, row: u64, t: &mut SimTime) -> Result<(), EngineError> {
        if !self.pending_rows.contains_row(row) {
            return Ok(());
        }
        if self.raid.is_stale(row) {
            let lpns = self.raid.layout().row_lpns(row);
            let all_cached = lpns.iter().all(|&l| self.cache.lookup(l).is_some());
            if all_cached {
                // Reconstruct-write from cached current versions.
                let mut datas = Vec::with_capacity(lpns.len());
                for &l in &lpns {
                    let slot = self
                        .cache
                        .lookup(l)
                        .ok_or(EngineError::Inconsistent("row member vanished from cache"))?;
                    datas.push(self.read_cached(l, slot, t)?);
                }
                let refs: Vec<&[u8]> = datas.iter().map(|d| d.as_slice()).collect();
                let cost = self.raid.parity_update_with_data(row, &refs)?;
                self.charge_raid(&cost);
                self.charge_stage(Stage::ParityRmw, DISK_OP * cost.writes() as u64, t);
            } else {
                // RMW: fold each pending page's decompressed delta.
                let pend: Vec<u64> = self.pending_rows.take_row(row).into_iter().collect();
                for &l in &pend {
                    self.pending_rows.add(row, l); // peek semantics
                }
                let mut deltas = Vec::new();
                for &lba in &pend {
                    let comp = self.read_delta(lba, t)?;
                    let full = codec::decompress(&comp)?;
                    debug_assert_eq!(full.len(), self.page_size());
                    let loc = self.raid.layout().locate(lba);
                    deltas.push((loc.data_index, full));
                }
                let refs: Vec<(usize, &[u8])> =
                    deltas.iter().map(|(d, v)| (*d, v.as_slice())).collect();
                let cost = match self.raid.parity_update_rmw(row, &refs) {
                    Ok(c) => c,
                    // The parity member of this row is dead, so there is
                    // nothing to fold deltas into. Resync instead: it
                    // recomputes from the live data members (all current —
                    // the deltas' data halves were dispatched at write
                    // time), skips the dead disk, and clears the stale
                    // mark so a later rebuild can re-derive the parity.
                    Err(RaidError::DiskFailed { .. }) => self.raid.resync(Some(&[row]))?,
                    Err(e) => return Err(e.into()),
                };
                self.charge_raid(&cost);
                self.charge_stage(Stage::ParityRmw, DISK_OP * cost.ops.len() as u64, t);
            }
            self.stats.parity_updates += 1;
        }
        // Reclaim: free old pages, invalidate deltas (§III-D's "second
        // scheme"). The tombstone is logged *before* anything is trimmed,
        // so a crash mid-reclaim can only leak flash pages, never leave
        // the log pointing at reclaimed ones.
        for lba in self.pending_rows.take_row(row) {
            if let Some(slot) = self.cache.lookup(lba) {
                debug_assert_eq!(self.cache.state(slot), PageState::Old);
                self.log_entry(
                    MapEntry { lba_raid: lba, slot, state: EntryState::Free, dez: None },
                    t,
                )?;
                self.invalidate_delta(lba)?;
                self.ssd.trim_page(self.slot_lpn(slot))?;
                self.cache.free_slot(slot);
            } else {
                self.invalidate_delta(lba)?;
            }
        }
        Ok(())
    }

    /// Flush everything: clean all rows, commit staged deltas, flush the
    /// metadata buffer to flash. The cleaning pass records its own
    /// background span; the staging + metalog tail is recorded as a
    /// `group_commit_flush` background span.
    pub fn flush(&mut self) -> Result<SimTime, EngineError> {
        let mut t = SimTime::ZERO;
        self.clean(&mut t)?;
        let saved = std::mem::take(&mut self.cur_stages);
        let t0 = t;
        let result = self.flush_tail(&mut t);
        let used = std::mem::replace(&mut self.cur_stages, saved);
        self.note_background(Stage::GroupCommitFlush, t.saturating_sub(t0), used);
        result?;
        Ok(t)
    }

    fn flush_tail(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        self.commit_staging(t)?;
        let batches = self.metalog.flush();
        self.persist_batches(batches, t)
    }

    // ---- failure handling (§III-E) ----------------------------------------

    /// Simulate a power failure and recover (§III-E1): every volatile
    /// structure is discarded; the primary map is rebuilt by replaying the
    /// metadata-log pages *read back from flash* between the NVRAM head
    /// and tail counters, then patched with the NVRAM metadata buffer and
    /// the NVRAM staging buffer.
    pub fn power_cycle(mut self) -> Result<KddEngine, EngineError> {
        // Power is back: clear any injected power-loss state first, or the
        // recovery reads below would fail too.
        if let Some(inj) = &self.injector {
            inj.restore_power();
        }
        let config = self.config;
        let meta_pages = self.meta_pages;
        let ps = config.geometry.page_size as usize;
        let epp = (ps - META_HDR) / ENTRY_BYTES;

        // 1. Flash replay between the NVRAM-preserved counters. A page
        //    that is torn, corrupt, or missing is tolerated — and redone
        //    from the NVRAM in-flight copy — exactly when its commit was
        //    never confirmed durable; anything else is real corruption.
        let (head, tail) = self.metalog.counters();
        let inflight: FastMap<u64, CommitBatch<MapEntry>> =
            // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
            self.metalog.unconfirmed().iter().map(|b| (b.seq, b.clone())).collect();
        let mut torn_detected = 0u64;
        let mut heal: Vec<CommitBatch<MapEntry>> = Vec::new();
        let mut recovered: FastMap<u64, MapEntry> = FastMap::default();
        for seq in head..tail {
            let slot = seq % meta_pages;
            // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
            let mut page = vec![0u8; ps];
            let valid = match self.ssd.read_page(slot, &mut page) {
                // A page too short for its header is as torn as a bad CRC.
                Ok(_) => match (le_u16(&page, 0), le_u64(&page, 2), le_u32(&page, 10)) {
                    (Some(count), Some(page_seq), Some(crc)) => {
                        count as usize <= epp && page_seq == seq && crc == meta_page_crc(&page)
                    }
                    _ => false,
                },
                // The tail page of an unconfirmed commit may never have
                // been written at all.
                Err(DevError::Unmapped { .. }) => false,
                Err(e) => return Err(e.into()),
            };
            let entries: Vec<MapEntry> = if valid {
                let count = le_u16(&page, 0).map_or(0, |c| c as usize);
                (0..count)
                    .map(|i| {
                        let off = META_HDR + i * ENTRY_BYTES;
                        MapEntry::decode(&page[off..off + ENTRY_BYTES])
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| EngineError::Layout("corrupt metadata entry".into()))?
            } else if let Some(batch) = inflight.get(&seq) {
                torn_detected += 1;
                // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
                heal.push(batch.clone());
                // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
                batch.entries.clone()
            } else {
                return Err(EngineError::Layout(format!(
                    "metadata page {slot} (seq {seq}) torn or corrupt with no in-flight copy"
                )));
            };
            for e in entries {
                if e.is_tombstone() {
                    recovered.remove(&e.key());
                } else {
                    recovered.insert(e.key(), e);
                }
            }
        }
        // Redo the torn/lost pages from NVRAM so the flash log is whole
        // again before normal operation resumes.
        if !heal.is_empty() {
            let mut t = SimTime::ZERO;
            self.persist_batches(heal, &mut t)?;
        }
        // 2. Apply the NVRAM metadata buffer (newer than anything logged).
        for e in self.metalog.buffered_snapshot() {
            if e.is_tombstone() {
                recovered.remove(&e.key());
            } else {
                recovered.insert(e.key(), e);
            }
        }

        // 3. Rebuild the directory, DEZ accounting and pending rows.
        let grouping = kdd_cache::setassoc::SetGrouping::ParityRow {
            chunk_pages: self.raid.layout().chunk_pages,
            data_disks: self.raid.layout().data_disks() as u64,
        };
        let mut cache = SetAssocCache::new_grouped(config.geometry, grouping);
        let mut delta_loc: FastMap<u64, DeltaLoc> = FastMap::default();
        let mut dez: FastMap<u32, DezInfo> = FastMap::default();
        let mut pending_rows = PendingRows::default();
        for e in recovered.values() {
            match e.state {
                EntryState::Clean => cache.insert_at(e.slot, e.lba_raid, PageState::Clean),
                EntryState::Old => {
                    cache.insert_at(e.slot, e.lba_raid, PageState::Old);
                    pending_rows.add(self.raid.layout().row_of(e.lba_raid), e.lba_raid);
                    if let Some(r) = e.dez {
                        delta_loc.insert(e.lba_raid, DeltaLoc::Dez(r));
                        dez.entry(r.slot).or_default().lbas.insert(e.lba_raid);
                    }
                }
                EntryState::Free => {}
            }
        }
        for &slot in dez.keys() {
            cache.occupy_delta_at(slot);
        }
        // 4. Deltas still in the NVRAM staging buffer supersede DEZ copies
        //    and imply the page is old with pending parity.
        let staged: Vec<u64> = self.nv.get().staging.snapshot().map(|(l, _)| l).collect();
        for lba in staged {
            let Some(slot) = cache.lookup(lba) else {
                // The mapping was tombstoned (an incompressible
                // write-through or reclaim crashed between its log entry
                // and the NVRAM cleanup): RAID already holds the current
                // data, so the orphan delta is dead — drop it.
                self.nv.get_mut().staging.remove(lba);
                continue;
            };
            if let Some(DeltaLoc::Dez(r)) = delta_loc.get(&lba).copied() {
                if let Some(info) = dez.get_mut(&r.slot) {
                    info.lbas.remove(&lba);
                }
            }
            delta_loc.insert(lba, DeltaLoc::Staged);
            if cache.state(slot) != PageState::Old {
                cache.set_state(slot, PageState::Old);
            }
            pending_rows.add(self.raid.layout().row_of(lba), lba);
        }

        // 5. Rows whose parity update was in flight when power failed are
        //    re-synchronised (§III-E1: "the parity of these rows is
        //    re-synchronized"). The crash may have interrupted a member
        //    write after its delta staging (or vice versa), so the cache
        //    view — which is what was acknowledged — is first written back
        //    to the members; the resync then recomputes parity over that.
        //    This also restores the delta-RMW invariant that a cached base
        //    equals the member content at the last parity sync.
        //    If the array is *also* degraded (a member died before the
        //    cut), rows with a data member on the dead disk cannot be
        //    written back or resynced here; they stay stale — their
        //    acknowledged data lives in the cache (base ⊕ delta), the
        //    array refuses unsafe degraded reads of stale rows, and the
        //    next clean/rebuild repairs them via delta-RMW.
        let stale: Vec<u64> = self.raid.stale_rows().collect();
        let failed = self.raid.failed_disks();
        let mut resyncable: Vec<u64> = Vec::new();
        for &row in &stale {
            let degraded = self
                .raid
                .layout()
                .row_lpns(row)
                .iter()
                .any(|&l| failed.contains(&self.raid.layout().locate(l).disk));
            if !degraded {
                resyncable.push(row);
            }
            for lba in self.raid.layout().row_lpns(row) {
                if failed.contains(&self.raid.layout().locate(lba).disk) {
                    continue;
                }
                let Some(slot) = cache.lookup(lba) else { continue };
                // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
                let mut data = vec![0u8; ps];
                self.ssd.read_page(self.slot_lpn(slot), &mut data)?;
                if cache.state(slot) == PageState::Old {
                    let comp = match delta_loc.get(&lba) {
                        Some(DeltaLoc::Staged) => self
                            .nv
                            .get()
                            .staging
                            .get(lba)
                            .ok_or(EngineError::Inconsistent("staged delta index broken"))?
                            // kdd-waiver(KDD006): crash-recovery replay, not a hot path.
                            .clone(),
                        Some(DeltaLoc::Dez(r)) => {
                            // kdd-waiver(KDD006): crash-recovery replay.
                            let mut dpage = vec![0u8; ps];
                            self.ssd.read_page(self.slot_lpn(r.slot), &mut dpage)?;
                            // kdd-waiver(KDD006): crash-recovery replay.
                            dpage[r.off as usize..r.off as usize + r.len as usize].to_vec()
                        }
                        None => {
                            return Err(EngineError::Layout(format!(
                                "old page {lba} has no delta after recovery"
                            )))
                        }
                    };
                    let delta = codec::decompress(&comp)?;
                    xor_into(&mut data, &delta);
                }
                self.raid.write_no_parity_update(lba, &data)?;
            }
        }
        let mut raid = self.raid;
        if !resyncable.is_empty() {
            raid.resync(Some(&resyncable))?;
        }

        Ok(KddEngine {
            config,
            ssd: self.ssd,
            raid,
            cache,
            nv: self.nv,
            metalog: self.metalog,
            delta_loc,
            dez,
            pending_rows,
            stats: CacheStats { torn_pages_detected: torn_detected, ..CacheStats::default() },
            meta_pages,
            injector: self.injector,
            mode: self.mode,
            pool: PagePool::new(ps),
            recorder: self.recorder,
            last_class: HitClass::ReadMiss,
            last_comp_milli: 0,
            codec: codec::Compressor::new(),
            meta_defer: false,
            meta_pending: Vec::new(),
            cur_stages: StageTimes::new(),
        })
    }

    /// SSD failure (§III-E2): the cache is lost; the RAID re-synchronises
    /// stale parity by reconstruct-write (data blocks were always
    /// dispatched to RAID), and a fresh SSD comes up empty. No data loss:
    /// RPO 0.
    pub fn recover_from_ssd_failure(&mut self) -> Result<SimTime, EngineError> {
        let saved = std::mem::take(&mut self.cur_stages);
        let mut t = SimTime::ZERO;
        let result = self.rebuild_after_ssd_loss(&mut t);
        let used = std::mem::replace(&mut self.cur_stages, saved);
        self.note_background(Stage::RaidReconstruct, t, used);
        result?;
        Ok(t)
    }

    fn rebuild_after_ssd_loss(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        self.ssd.fail();
        let cost = self.raid.resync(None)?;
        self.charge_raid(&cost);
        self.charge_stage(Stage::RaidReconstruct, DISK_OP * cost.ops.len() as u64, t);
        self.ssd.replace();
        let grouping = kdd_cache::setassoc::SetGrouping::ParityRow {
            chunk_pages: self.raid.layout().chunk_pages,
            data_disks: self.raid.layout().data_disks() as u64,
        };
        self.cache = SetAssocCache::new_grouped(self.config.geometry, grouping);
        self.nv.get_mut().staging.drain();
        self.metalog = MetaLog::new(self.meta_pages, (self.page_size() - META_HDR) / ENTRY_BYTES);
        self.metalog.enable_inflight_tracking();
        // Any pages parked by an in-flight batch belonged to the lost
        // cache's log; the fresh SSD starts from an empty mapping.
        self.meta_pending.clear();
        self.delta_loc.clear();
        self.dez.clear();
        self.pending_rows = PendingRows::default();
        Ok(())
    }

    /// HDD failure (§III-E2): "KDD first updates all parity blocks using
    /// the parity_update interface and then triggers the rebuilding
    /// process at the RAID layer."
    pub fn recover_from_hdd_failure(&mut self, disk: usize) -> Result<SimTime, EngineError> {
        let mut t = SimTime::ZERO;
        self.raid.fail_disk(disk);
        self.clean(&mut t)?;
        let saved = std::mem::take(&mut self.cur_stages);
        let t0 = t;
        let result = self.rebuild_failed_disk(&mut t);
        let used = std::mem::replace(&mut self.cur_stages, saved);
        self.note_background(Stage::RaidReconstruct, t.saturating_sub(t0), used);
        result?;
        Ok(t)
    }

    fn rebuild_failed_disk(&mut self, t: &mut SimTime) -> Result<(), EngineError> {
        let cost = self.raid.rebuild()?;
        self.charge_raid(&cost);
        let dt = DISK_OP * (cost.ops.len() as u64 / self.raid.layout().disks as u64).max(1);
        self.charge_stage(Stage::RaidReconstruct, dt, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdd_cache::setassoc::CacheGeometry;
    use kdd_raid::layout::{Layout, RaidLevel};
    use kdd_util::rng::seeded_rng;
    use rand::RngExt;

    const PS: u32 = 512;

    fn engine(cache_pages: u64) -> KddEngine {
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 32);
        let raid = RaidArray::new(layout, PS);
        let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PS as u64, PS, 0.1);
        let g = CacheGeometry {
            total_pages: cache_pages,
            ways: 8.min(cache_pages as u32),
            page_size: PS,
        };
        KddEngine::new(KddConfig::new(g), ssd, raid).unwrap()
    }

    fn page(tag: u64) -> Vec<u8> {
        (0..PS as usize).map(|i| (tag as u8) ^ (i as u8).wrapping_mul(13)).collect()
    }

    fn similar_page(base: &[u8], tag: u8) -> Vec<u8> {
        // Change ~10% of bytes, clustered.
        let mut p = base.to_vec();
        for i in 0..PS as usize / 10 {
            p[(i * 7) % PS as usize] = tag ^ i as u8;
        }
        p
    }

    #[test]
    fn write_read_roundtrip_with_deltas() {
        let mut e = engine(64);
        let p0 = page(1);
        e.write(10, &p0).unwrap(); // miss
        let p1 = similar_page(&p0, 0xAA);
        e.write(10, &p1).unwrap(); // hit → delta path
        let (got, _) = e.read(10).unwrap();
        assert_eq!(got, p1, "old ⊕ delta must equal the latest version");
        // A third version (delta coalescing).
        let p2 = similar_page(&p1, 0xBB);
        e.write(10, &p2).unwrap();
        let (got2, _) = e.read(10).unwrap();
        assert_eq!(got2, p2);
        assert_eq!(e.staged_deltas(), 1, "one coalesced delta");
    }

    #[test]
    fn write_hit_leaves_parity_stale_until_clean() {
        let mut e = engine(64);
        let p0 = page(2);
        e.write(0, &p0).unwrap();
        let row = e.raid().layout().row_of(0);
        assert!(!e.raid().is_stale(row));
        e.write(0, &similar_page(&p0, 1)).unwrap();
        assert!(e.raid().is_stale(row), "parity must be delayed");
        let mut t = SimTime::ZERO;
        e.clean(&mut t).unwrap();
        assert!(!e.raid().is_stale(row));
        assert_eq!(e.pending_row_count(), 0);
        // And the raid content is the latest version.
        let mut buf = vec![0u8; PS as usize];
        e.raid_mut().read_page(0, &mut buf).unwrap();
        assert_eq!(buf, similar_page(&page(2), 1));
    }

    #[test]
    fn dez_commit_and_read_back() {
        let mut e = engine(256);
        // Fill many pages and rewrite them until the staging buffer
        // (512B) commits DEZ pages.
        // 8 LBAs per 16-page stripe group so no 8-way set overflows.
        let lbas: Vec<u64> = (0..24u64).map(|i| (i / 8) * 16 + i % 8).collect();
        let mut versions = FastMap::default();
        for &lba in &lbas {
            let p = page(lba);
            e.write(lba, &p).unwrap();
            versions.insert(lba, p);
        }
        for &lba in &lbas {
            let next = similar_page(&versions[&lba], (lba as u8).wrapping_mul(37) | 1);
            e.write(lba, &next).unwrap();
            versions.insert(lba, next);
        }
        assert!(e.stats().ssd_delta_writes > 0, "staging must have committed");
        for &lba in &lbas {
            let (got, _) = e.read(lba).unwrap();
            assert_eq!(got, versions[&lba], "lba {lba}");
        }
    }

    #[test]
    fn power_failure_recovers_exact_state() {
        let mut e = engine(128);
        let mut rng = seeded_rng(42);
        let mut versions: FastMap<u64, Vec<u8>> = FastMap::default();
        for _ in 0..600 {
            // 8 LBAs per stripe group so the 8-way sets can hold them all.
            let i = rng.random_range(0..40u64);
            let lba = (i / 8) * 16 + i % 8;
            if rng.random_bool(0.6) {
                let next = match versions.get(&lba) {
                    Some(v) => similar_page(v, rng.random()),
                    None => page(lba),
                };
                e.write(lba, &next).unwrap();
                versions.insert(lba, next);
            } else {
                let (got, _) = e.read(lba).unwrap();
                if let Some(v) = versions.get(&lba) {
                    assert_eq!(&got, v);
                }
            }
        }
        let hits_before = e.stats().read_hits + e.stats().write_hits;
        assert!(hits_before > 0);
        // Pull the plug.
        let mut e2 = e.power_cycle().expect("recovery");
        for (lba, v) in &versions {
            let (got, _) = e2.read(*lba).unwrap();
            assert_eq!(&got, v, "lba {lba} wrong after power cycle");
        }
        // The recovered cache must be warm: the verification reads above
        // should mostly hit.
        assert!(
            e2.stats().read_hits > e2.stats().read_misses,
            "cache came back cold: {} hits vs {} misses",
            e2.stats().read_hits,
            e2.stats().read_misses
        );
    }

    #[test]
    fn ssd_failure_recovers_with_rpo_zero() {
        let mut e = engine(64);
        let mut versions: FastMap<u64, Vec<u8>> = FastMap::default();
        for lba in 0..8u64 {
            let p = page(lba);
            e.write(lba, &p).unwrap();
            let p2 = similar_page(&p, 3);
            e.write(lba, &p2).unwrap(); // leaves stale parity
            versions.insert(lba, p2);
        }
        assert!(e.raid().stale_row_count() > 0, "writes must have left stale parity");
        e.recover_from_ssd_failure().unwrap();
        assert_eq!(e.raid().stale_row_count(), 0, "resync must repair parity");
        // All data still present and correct (served from RAID now).
        for (lba, v) in &versions {
            let (got, _) = e.read(*lba).unwrap();
            assert_eq!(&got, v, "lba {lba} lost after SSD failure");
        }
        // And redundancy is real again: degrade a disk and re-check.
        e.raid_mut().fail_disk(2);
        for (lba, v) in versions.iter().take(8) {
            let mut buf = vec![0u8; PS as usize];
            e.raid_mut().read_page(*lba, &mut buf).unwrap();
            assert_eq!(&buf, v, "degraded read of {lba}");
        }
    }

    #[test]
    fn hdd_failure_parity_update_then_rebuild() {
        let mut e = engine(64);
        let mut versions: FastMap<u64, Vec<u8>> = FastMap::default();
        for lba in 0..32u64 {
            let p = page(lba ^ 7);
            e.write(lba, &p).unwrap();
            let p2 = similar_page(&p, 9);
            e.write(lba, &p2).unwrap();
            versions.insert(lba, p2);
        }
        assert!(e.raid().stale_row_count() > 0);
        e.recover_from_hdd_failure(1).unwrap();
        assert!(e.raid().failed_disks().is_empty());
        assert_eq!(e.raid().stale_row_count(), 0);
        for (lba, v) in &versions {
            let mut buf = vec![0u8; PS as usize];
            e.raid_mut().read_page(*lba, &mut buf).unwrap();
            assert_eq!(&buf, v, "lba {lba} wrong after rebuild");
        }
    }

    #[test]
    fn dez_compaction_preserves_deltas_under_pressure() {
        // Many hot pages rewritten with small deltas: invalidations decay
        // DEZ pages; once pinned pages push past 3/4 of the cleaning
        // trigger the compactor must merge pages without corrupting any
        // delta.
        // Small pages (512 B) shrink the metadata partition floor, so give
        // this test a roomier one: 96 live mappings need ~5 pages at 22
        // entries/page.
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 32);
        let raid = RaidArray::new(layout, PS);
        let ssd = SsdDevice::with_logical_capacity((128 + 64) * PS as u64, PS, 0.1);
        let g = CacheGeometry { total_pages: 128, ways: 8, page_size: PS };
        let mut cfg = KddConfig::new(g);
        cfg.meta_partition_frac = 0.08; // 10 pages
        let mut e = KddEngine::new(cfg, ssd, raid).unwrap();
        let lbas: Vec<u64> = (0..96u64).map(|i| (i / 8) * 16 + i % 8).collect();
        let mut versions = FastMap::default();
        for &lba in &lbas {
            let p = page(lba);
            e.write(lba, &p).unwrap();
            versions.insert(lba, p);
        }
        for round in 0..3u8 {
            for &lba in &lbas {
                let next = similar_page(&versions[&lba], round.wrapping_mul(91) | 1);
                e.write(lba, &next).unwrap();
                versions.insert(lba, next);
            }
        }
        // Every page must still combine to its latest version.
        for &lba in &lbas {
            let (got, _) = e.read(lba).unwrap();
            assert_eq!(got, versions[&lba], "lba {lba} corrupted");
        }
        // DEZ footprint must stay bounded relative to its live bytes.
        let dez_pages = e.cache.count_state(PageState::Delta);
        assert!(dez_pages <= 96, "DEZ blew up: {dez_pages} pages");
    }

    #[test]
    fn endurance_counters_age_with_traffic() {
        let mut e = engine(64);
        for lba in 0..32u64 {
            e.write(lba, &page(lba)).unwrap();
        }
        let rep = e.ssd().endurance();
        assert!(rep.host_written_bytes > 0);
        assert!(rep.waf() >= 1.0);
    }

    #[test]
    fn too_small_ssd_rejected() {
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 8);
        let raid = RaidArray::new(layout, PS);
        let ssd = SsdDevice::with_logical_capacity(16 * PS as u64, PS, 0.1);
        // Ask for a cache far larger than any geometry the tiny request
        // could have produced.
        let g = CacheGeometry { total_pages: 10_000_000, ways: 8, page_size: PS };
        assert!(matches!(
            KddEngine::new(KddConfig::new(g), ssd, raid),
            Err(EngineError::Layout(_))
        ));
    }

    #[test]
    fn cleaning_threshold_bounds_pinned_pages() {
        let mut e = engine(64); // trigger ≈ 12 slots
        for round in 0..4u8 {
            for lba in 0..40u64 {
                let base = match e.read(lba) {
                    Ok((d, _)) => d,
                    Err(_) => page(lba),
                };
                e.write(lba, &similar_page(&base, round)).unwrap();
            }
        }
        let pinned = e.cache.count_state(PageState::Old) + e.cache.count_state(PageState::Delta);
        let trigger = KddConfig::new(CacheGeometry { total_pages: 64, ways: 8, page_size: PS })
            .clean_trigger_slots() as usize;
        assert!(pinned <= trigger, "pinned pages unbounded: {pinned} > {trigger}");
        assert!(e.stats().parity_updates > 0);
    }
}
