//! The circular persistent metadata log (§III-B/C).
//!
//! "KDD organizes the metadata partition on SSD as a circular persistent
//! log. Two counters are maintained to indicate the head and the tail of
//! the log space. New mapping entries are first accumulated in a metadata
//! buffer [in NVRAM]. When there are enough entries in the buffer to fill
//! a page, they are written to the tail of the log... KDD reclaims
//! metadata pages from the head of the log... Valid mapping entries in the
//! candidate page are reinserted to the metadata buffer."
//!
//! This module implements that machinery generically over the entry type:
//! the trace-driven simulator logs bare keys, the prototype engine logs
//! full serialisable mapping entries. The garbage-collection cost this log
//! produces — live entries from reclaimed head pages being rewritten at
//! the tail — is exactly what Figure 4 sweeps against the partition size.
//!
//! Entry coalescing happens in the NVRAM buffer ("an entry in the metadata
//! buffer can be overwritten by a new entry having the same `lba_daz`
//! value", §III-C) and implicitly in the log itself: only the newest entry
//! per key is *valid*; GC drops the rest. A tombstone (an entry whose
//! `state` is *free*, written when a DAZ page is reclaimed) is valid until
//! it reaches the head, at which point it can be dropped entirely — there
//! is no older entry left for it to shadow.

// Indexing here is audited: offsets come from length-checked parses or
// module invariants. See DESIGN.md "Static analysis & invariants".
#![allow(clippy::indexing_slicing)]

use kdd_util::hash::FastMap;
use std::collections::VecDeque;

/// An entry the log can store.
pub trait LogEntry: Clone {
    /// The key entries coalesce on (the DAZ page's RAID address).
    fn key(&self) -> u64;

    /// Whether this entry marks the key as freed (a tombstone).
    fn is_tombstone(&self) -> bool;
}

/// Minimal entry for the accounting simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyEntry {
    /// Coalescing key.
    pub key: u64,
    /// Free-marker flag.
    pub tombstone: bool,
}

impl LogEntry for KeyEntry {
    fn key(&self) -> u64 {
        self.key
    }

    fn is_tombstone(&self) -> bool {
        self.tombstone
    }
}

/// A page's worth of entries committed to flash: the caller must write it
/// at partition-relative page index `slot`.
#[derive(Debug, Clone)]
pub struct CommitBatch<E> {
    /// Page index within the metadata partition (`seq % partition_pages`).
    pub slot: u64,
    /// Monotonic page sequence number.
    pub seq: u64,
    /// The entries to serialise into the page.
    pub entries: Vec<E>,
}

#[derive(Debug, Clone)]
struct MetaPage<E> {
    seq: u64,
    entries: Vec<E>,
}

/// Where a key's newest entry lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Latest {
    /// Still in the NVRAM buffer.
    Buffered,
    /// In the log page with this sequence number.
    Page(u64),
}

/// The circular log with its NVRAM staging buffer.
///
/// # Examples
///
/// ```
/// use kdd_core::metalog::{KeyEntry, MetaLog};
///
/// let mut log = MetaLog::new(8, 4); // 8-page partition, 4 entries/page
/// for lba in 0..4u64 {
///     let commits = log.push(KeyEntry { key: lba, tombstone: false });
///     if lba == 3 {
///         assert_eq!(commits.len(), 1, "page filled and committed");
///     }
/// }
/// // Crash recovery: replay yields exactly the live mappings.
/// assert_eq!(log.recover_live().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MetaLog<E: LogEntry> {
    partition_pages: u64,
    entries_per_page: usize,
    head: u64,
    tail: u64,
    /// Buffered entries in insertion order (holes from coalescing).
    buffer: Vec<Option<E>>,
    buffer_live: usize,
    buffer_index: FastMap<u64, usize>,
    pages: VecDeque<MetaPage<E>>,
    latest: FastMap<u64, Latest>,
    pages_written: u64,
    entries_pushed: u64,
    gc_reclaims: u64,
    /// When enabled, committed-but-unconfirmed batches are retained (an
    /// NVRAM-resident redo list) so recovery can tolerate a torn or lost
    /// tail page: the caller confirms each batch once the flash write
    /// completed.
    track_inflight: bool,
    inflight: Vec<CommitBatch<E>>,
}

impl<E: LogEntry> MetaLog<E> {
    /// Create a log over `partition_pages` flash pages, packing
    /// `entries_per_page` entries per page.
    ///
    /// # Panics
    /// Panics unless the partition holds at least 2 pages (one to write,
    /// one to reclaim) and pages hold at least one entry.
    pub fn new(partition_pages: u64, entries_per_page: usize) -> Self {
        assert!(partition_pages >= 2, "metadata partition needs >= 2 pages");
        assert!(entries_per_page >= 1);
        MetaLog {
            partition_pages,
            entries_per_page,
            head: 0,
            tail: 0,
            buffer: Vec::new(),
            buffer_live: 0,
            buffer_index: FastMap::default(),
            pages: VecDeque::new(),
            latest: FastMap::default(),
            pages_written: 0,
            entries_pushed: 0,
            gc_reclaims: 0,
            track_inflight: false,
            inflight: Vec::new(),
        }
    }

    /// Keep an NVRAM-resident copy of every [`CommitBatch`] until the
    /// caller [`MetaLog::confirm`]s that the flash write completed. A crash
    /// between commit and confirm then leaves the batch recoverable even if
    /// the flash page is torn, corrupt, or was never written at all.
    pub fn enable_inflight_tracking(&mut self) {
        self.track_inflight = true;
    }

    /// Confirm that the page with sequence number `seq` is durably on
    /// flash; drops its in-flight copy.
    pub fn confirm(&mut self, seq: u64) {
        self.inflight.retain(|b| b.seq != seq);
    }

    /// Committed batches not yet confirmed durable, oldest first. Recovery
    /// consults this to decide whether a bad flash page is a tolerable torn
    /// tail (redo from here) or real corruption (hard error).
    pub fn unconfirmed(&self) -> &[CommitBatch<E>] {
        &self.inflight
    }

    /// Pages in the partition.
    pub fn partition_pages(&self) -> u64 {
        self.partition_pages
    }

    /// Entries per page.
    pub fn entries_per_page(&self) -> usize {
        self.entries_per_page
    }

    /// Log pages currently in use.
    pub fn used_pages(&self) -> u64 {
        self.tail - self.head
    }

    /// Total metadata pages ever written (the Figure 4 numerator).
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Entries pushed by the caller (excludes GC reinsertions).
    pub fn entries_pushed(&self) -> u64 {
        self.entries_pushed
    }

    /// Head pages reclaimed by GC.
    pub fn gc_reclaims(&self) -> u64 {
        self.gc_reclaims
    }

    /// Entries currently staged in the NVRAM buffer.
    pub fn buffered_entries(&self) -> usize {
        self.buffer_live
    }

    /// NVRAM head/tail counters (what §III-E1 restores after power loss).
    pub fn counters(&self) -> (u64, u64) {
        (self.head, self.tail)
    }

    /// Append an entry; returns the page commits (possibly several, when
    /// GC reinsertion cascades) the caller must persist.
    pub fn push(&mut self, entry: E) -> Vec<CommitBatch<E>> {
        self.entries_pushed += 1;
        self.buffer_insert(entry);
        let mut out = Vec::new();
        self.drain_full_pages(&mut out);
        out
    }

    /// Append a group of entries as one **group commit**.
    ///
    /// All entries enter the NVRAM buffer before any full page is cut, so
    /// same-key entries within the group coalesce to a single buffered
    /// entry even when an intermediate page boundary would have forced the
    /// older copy out under entry-at-a-time [`MetaLog::push`] — a group
    /// can therefore produce *fewer* metadata page writes than the same
    /// entries pushed individually, never more. Returns every page commit
    /// produced; the NVRAM inflight/confirm protocol is unchanged (each
    /// returned batch is tracked until [`MetaLog::confirm`], and the
    /// entries themselves are NVRAM-durable in the buffer from the moment
    /// this returns, exactly as with `push`).
    pub fn push_group(&mut self, entries: impl IntoIterator<Item = E>) -> Vec<CommitBatch<E>> {
        for e in entries {
            self.entries_pushed += 1;
            self.buffer_insert(e);
        }
        let mut out = Vec::new();
        self.drain_full_pages(&mut out);
        out
    }

    /// Force-commit the buffer (shutdown / checkpoint).
    pub fn flush(&mut self) -> Vec<CommitBatch<E>> {
        let mut out = Vec::new();
        self.drain_full_pages(&mut out);
        if self.buffer_live > 0 {
            let batch: Vec<E> = self.take_buffer_entries(self.buffer_live);
            self.append_page(batch, &mut out);
        }
        out
    }

    /// The newest valid entry for `key`, if any (buffered or logged).
    pub fn latest_entry(&self, key: u64) -> Option<&E> {
        match self.latest.get(&key)? {
            Latest::Buffered => {
                let idx = *self.buffer_index.get(&key)?;
                self.buffer[idx].as_ref()
            }
            Latest::Page(seq) => {
                let page = self.pages.iter().find(|p| p.seq == *seq)?;
                page.entries.iter().rev().find(|e| e.key() == key)
            }
        }
    }

    /// The NVRAM buffer's entries in insertion order — applied *after* a
    /// flash replay during power-failure recovery (buffered entries are
    /// newer than anything on flash).
    pub fn buffered_snapshot(&self) -> Vec<E> {
        self.buffer.iter().flatten().cloned().collect()
    }

    /// Replay the log (head→tail) plus the NVRAM buffer into the set of
    /// live mappings — the §III-E1 power-failure recovery scan. Tombstoned
    /// keys are excluded.
    pub fn recover_live(&self) -> Vec<E> {
        let mut live: FastMap<u64, E> = FastMap::default();
        for page in &self.pages {
            for e in &page.entries {
                if e.is_tombstone() {
                    live.remove(&e.key());
                } else {
                    live.insert(e.key(), e.clone());
                }
            }
        }
        for e in self.buffer.iter().flatten() {
            if e.is_tombstone() {
                live.remove(&e.key());
            } else {
                live.insert(e.key(), e.clone());
            }
        }
        live.into_values().collect()
    }

    // ---- internals -------------------------------------------------------

    fn buffer_insert(&mut self, entry: E) {
        let key = entry.key();
        if let Some(&idx) = self.buffer_index.get(&key) {
            // Coalesce: newest entry overwrites the buffered one.
            if self.buffer[idx].is_some() {
                self.buffer[idx] = Some(entry);
                self.latest.insert(key, Latest::Buffered);
                return;
            }
        }
        self.buffer_index.insert(key, self.buffer.len());
        self.buffer.push(Some(entry));
        self.buffer_live += 1;
        self.latest.insert(key, Latest::Buffered);
    }

    fn take_buffer_entries(&mut self, n: usize) -> Vec<E> {
        let mut out = Vec::with_capacity(n);
        let mut kept = Vec::with_capacity(self.buffer.len());
        for slot in self.buffer.drain(..) {
            match slot {
                Some(e) if out.len() < n => out.push(e),
                other => kept.push(other),
            }
        }
        // Compact: drop holes, rebuild the index.
        self.buffer = kept.into_iter().flatten().map(Some).collect();
        self.buffer_index.clear();
        for (i, e) in self.buffer.iter().enumerate() {
            // The rebuild above leaves no holes, so every slot is Some.
            if let Some(e) = e.as_ref() {
                self.buffer_index.insert(e.key(), i);
            }
        }
        self.buffer_live = self.buffer.len();
        out
    }

    fn drain_full_pages(&mut self, out: &mut Vec<CommitBatch<E>>) {
        let mut guard = 0u64;
        while self.buffer_live >= self.entries_per_page {
            guard += 1;
            assert!(
                guard <= self.partition_pages * 4 + 8,
                "metadata partition too small for the live mapping set \
                 (GC cannot make progress); grow the partition"
            );
            let batch = self.take_buffer_entries(self.entries_per_page);
            self.append_page(batch, out);
        }
    }

    fn append_page(&mut self, entries: Vec<E>, out: &mut Vec<CommitBatch<E>>) {
        // Make room first (may reinsert live head entries into the buffer).
        while self.used_pages() >= self.partition_pages {
            if !self.reclaim_head() {
                break;
            }
        }
        let seq = self.tail;
        self.tail += 1;
        for e in &entries {
            self.latest.insert(e.key(), Latest::Page(seq));
        }
        self.pages.push_back(MetaPage { seq, entries: entries.clone() });
        self.pages_written = self.pages_written.saturating_add(1);
        let batch = CommitBatch { slot: seq % self.partition_pages, seq, entries };
        if self.track_inflight {
            // Batches GC'd past the head can no longer matter to recovery.
            self.inflight.retain(|b| b.seq >= self.head);
            self.inflight.push(batch.clone());
        }
        out.push(batch);
    }

    /// Oldest-first GC: drop dead entries, reinsert live ones. Returns
    /// `false` when there is no head page to reclaim (an accounting bug:
    /// `used_pages()` is counter-derived, so disagreeing with the deque
    /// must stop the caller's loop rather than spin or panic).
    fn reclaim_head(&mut self) -> bool {
        let Some(page) = self.pages.pop_front() else {
            debug_assert!(false, "used_pages > 0 but page deque empty");
            return false;
        };
        debug_assert_eq!(page.seq, self.head);
        self.head += 1;
        self.gc_reclaims += 1;
        for e in page.entries {
            let key = e.key();
            if self.latest.get(&key) == Some(&Latest::Page(page.seq)) {
                if e.is_tombstone() {
                    // Nothing older left to shadow: drop entirely.
                    self.latest.remove(&key);
                } else {
                    self.buffer_insert(e);
                }
            }
            // Otherwise a newer entry exists elsewhere: dead, drop.
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> KeyEntry {
        KeyEntry { key: k, tombstone: false }
    }

    fn tomb(k: u64) -> KeyEntry {
        KeyEntry { key: k, tombstone: true }
    }

    #[test]
    fn commits_when_page_fills() {
        let mut log = MetaLog::new(8, 4);
        assert!(log.push(key(1)).is_empty());
        assert!(log.push(key(2)).is_empty());
        assert!(log.push(key(3)).is_empty());
        let commits = log.push(key(4));
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].entries.len(), 4);
        assert_eq!(commits[0].slot, 0);
        assert_eq!(log.pages_written(), 1);
        assert_eq!(log.used_pages(), 1);
    }

    #[test]
    fn coalescing_in_buffer() {
        let mut log = MetaLog::new(8, 4);
        for _ in 0..100 {
            assert!(log.push(key(7)).is_empty(), "same key must coalesce");
        }
        assert_eq!(log.buffered_entries(), 1);
        let commits = log.flush();
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].entries.len(), 1);
    }

    #[test]
    fn wraparound_slots_are_circular() {
        let mut log = MetaLog::new(2, 2);
        let mut slots = Vec::new();
        for i in 0..20 {
            for c in log.push(tomb(i * 2)).into_iter().chain(log.push(tomb(i * 2 + 1))) {
                slots.push(c.slot);
            }
        }
        assert!(slots.iter().all(|&s| s < 2));
        assert!(slots.windows(2).any(|w| w[0] != w[1]), "slots must alternate");
    }

    #[test]
    fn gc_reinserts_live_entries() {
        // Partition of 5 pages × 2 entries = 10 live entries max.
        let mut log = MetaLog::new(5, 2);
        // Write 3 pages worth of distinct keys, then push the log past the
        // partition boundary so GC must reclaim heads whose entries (still
        // newest for their keys) get reinserted and rewritten.
        for k in 0..6 {
            log.push(key(k));
        }
        for k in 0..6 {
            log.push(key(k)); // rewrite: newer copies further down the log
        }
        assert!(log.used_pages() <= 5);
        let before = log.pages_written();
        log.push(key(100));
        log.push(key(101));
        assert!(log.pages_written() > before);
        assert!(log.gc_reclaims() > 0);
        // Every key still recoverable.
        let mut live: Vec<u64> = log.recover_live().iter().map(|e| e.key).collect();
        live.sort_unstable();
        assert_eq!(live, vec![0, 1, 2, 3, 4, 5, 100, 101]);
    }

    #[test]
    fn tombstones_dropped_at_head() {
        let mut log = MetaLog::new(2, 2);
        log.push(key(1));
        log.push(tomb(1));
        // key(1)'s alloc entry then its tombstone: after enough churn the
        // tombstone reaches the head and disappears.
        for k in 10..30 {
            log.push(tomb(k));
        }
        let live = log.recover_live();
        assert!(live.is_empty(), "tombstoned keys must not recover: {live:?}");
    }

    #[test]
    fn smaller_partition_writes_more_pages() {
        // The Figure 4 effect in miniature: same workload, smaller
        // partition → more GC → more metadata pages written.
        let run = |partition: u64| {
            let mut log = MetaLog::new(partition, 4);
            // 16 hot keys churned repeatedly + a stream of cold keys.
            for i in 0..2000u64 {
                log.push(key(i % 16));
                if i % 3 == 0 {
                    log.push(key(1000 + i));
                }
                if i % 3 == 1 && i > 3 {
                    log.push(tomb(1000 + i - 1));
                }
            }
            log.flush();
            log.pages_written()
        };
        let small = run(8);
        let big = run(256);
        assert!(small > big, "small partition {small} must write more than big {big}");
    }

    #[test]
    fn recovery_matches_latest_state() {
        let mut log = MetaLog::new(16, 4);
        for k in 0..40 {
            log.push(key(k));
        }
        for k in 0..20 {
            log.push(tomb(k));
        }
        log.push(key(5)); // resurrect 5
        let mut live: Vec<u64> = log.recover_live().iter().map(|e| e.key).collect();
        live.sort_unstable();
        let expect: Vec<u64> = std::iter::once(5).chain(20..40).collect();
        assert_eq!(live, expect);
    }

    #[test]
    fn latest_entry_tracks_buffer_and_pages() {
        let mut log = MetaLog::new(8, 2);
        log.push(key(9));
        assert!(!log.latest_entry(9).unwrap().tombstone);
        log.push(key(10)); // forces commit of the pair
        assert_eq!(log.used_pages(), 1);
        assert_eq!(log.latest_entry(9).unwrap().key, 9);
        log.push(tomb(9));
        assert!(log.latest_entry(9).unwrap().tombstone);
        assert!(log.latest_entry(999).is_none());
    }

    #[test]
    fn counters_advance_monotonically() {
        let mut log = MetaLog::new(2, 1);
        for k in 0..10 {
            log.push(tomb(k));
        }
        let (head, tail) = log.counters();
        assert!(tail >= head);
        assert!(tail - head <= 2);
        assert_eq!(log.pages_written(), 10);
    }

    #[test]
    fn inflight_disabled_by_default() {
        let mut log = MetaLog::new(8, 2);
        log.push(key(1));
        log.push(key(2)); // commits a page
        assert!(log.unconfirmed().is_empty());
    }

    #[test]
    fn inflight_tracks_until_confirmed() {
        let mut log = MetaLog::new(8, 2);
        log.enable_inflight_tracking();
        log.push(key(1));
        let commits = log.push(key(2));
        assert_eq!(commits.len(), 1);
        assert_eq!(log.unconfirmed().len(), 1);
        assert_eq!(log.unconfirmed()[0].seq, commits[0].seq);
        log.confirm(commits[0].seq);
        assert!(log.unconfirmed().is_empty());
        // Confirming an unknown seq is a no-op.
        log.confirm(999);
    }

    #[test]
    fn inflight_entries_dropped_once_gc_passes_them() {
        let mut log = MetaLog::new(2, 1);
        log.enable_inflight_tracking();
        for k in 0..10 {
            log.push(tomb(k)); // never confirmed
        }
        let (head, _) = log.counters();
        assert!(log.unconfirmed().iter().all(|b| b.seq >= head));
        assert!(log.unconfirmed().len() as u64 <= log.partition_pages() + 1);
    }

    #[test]
    fn group_commit_coalesces_within_group() {
        // 4 distinct keys rewritten 8× each, pushed as one group: the
        // buffer coalesces them to 4 entries → one page, no matter how the
        // rewrites interleave. Entry-at-a-time push over a 2-entry page
        // would have cut pages mid-stream and rewritten the keys.
        let mut grouped = MetaLog::new(8, 4);
        let entries: Vec<KeyEntry> = (0..32).map(|i| key(i % 4)).collect();
        let commits = grouped.push_group(entries.clone());
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].entries.len(), 4);
        let mut single = MetaLog::new(8, 4);
        let mut single_pages = 0;
        for e in entries {
            single_pages += single.push(e).len();
        }
        single.flush();
        assert!(
            grouped.pages_written() <= single_pages as u64 + 1,
            "group commit must never write more pages"
        );
        assert_eq!(grouped.entries_pushed(), 32);
    }

    #[test]
    fn group_commit_spans_multiple_pages() {
        let mut log = MetaLog::new(8, 2);
        log.enable_inflight_tracking();
        let commits = log.push_group((0..7).map(key));
        assert_eq!(commits.len(), 3, "7 distinct entries over 2/page cut 3 pages");
        assert_eq!(log.buffered_entries(), 1);
        assert_eq!(log.unconfirmed().len(), 3, "every group page is inflight-tracked");
        for c in &commits {
            log.confirm(c.seq);
        }
        assert!(log.unconfirmed().is_empty());
        let mut live: Vec<u64> = log.recover_live().iter().map(|e| e.key).collect();
        live.sort_unstable();
        assert_eq!(live, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_group_is_a_noop() {
        let mut log = MetaLog::new(8, 2);
        assert!(log.push_group(std::iter::empty::<KeyEntry>()).is_empty());
        assert_eq!(log.entries_pushed(), 0);
        assert_eq!(log.buffered_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn livelocked_partition_detected() {
        // 2-page partition, 1 entry/page, 4 permanently-live keys: GC can
        // never make room.
        let mut log = MetaLog::new(2, 1);
        for i in 0..100u64 {
            log.push(key(i % 4));
        }
    }
}
