//! Quickstart: stand up a KDD-cached RAID-5, push some traffic through
//! it, and watch the two headline effects — delayed parity updates and
//! reduced SSD write traffic.
//!
//! Run with: `cargo run --release --example quickstart`

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::prelude::*;

fn main() {
    // ---- build the stack --------------------------------------------------
    // 5 × (in-memory) disks in RAID-5, 64 KiB chunks over 4 KiB pages.
    let page_size = 4096u32;
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 256);
    let raid = RaidArray::new(layout, page_size);
    println!(
        "RAID-5: {} disks, {} data pages, {} parity rows",
        layout.disks,
        layout.capacity_pages(),
        layout.rows()
    );

    // A small SSD cache (1024 pages) managed by KDD.
    let cache_pages = 1024u64;
    let ssd =
        SsdDevice::with_logical_capacity((cache_pages + 64) * page_size as u64, page_size, 0.07);
    let geometry = CacheGeometry { total_pages: cache_pages, ways: 16, page_size };
    let mut engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine");

    // ---- a little OLTP-ish workload ---------------------------------------
    // Write 256 "rows", then update each of them 4 times changing ~10% of
    // the page — the content locality KDD exploits.
    let mut pages: Vec<Vec<u8>> = (0..256u64)
        .map(|lba| {
            (0..page_size as usize).map(|i| (lba as u8) ^ (i as u8).wrapping_mul(17)).collect()
        })
        .collect();
    for (lba, page) in pages.iter().enumerate() {
        engine.write(lba as u64, page).expect("initial write");
    }
    println!("\nafter initial load:");
    print_state(&engine);

    for round in 0..4u8 {
        for lba in 0..256u64 {
            let page = &mut pages[lba as usize];
            // Update a few scattered 32-byte fields.
            for f in 0..12usize {
                let off = (f * 331 + round as usize * 97) % (page_size as usize - 32);
                for b in &mut page[off..off + 32] {
                    *b = b.wrapping_add(round + 1);
                }
            }
            engine.write(lba, page).expect("update");
        }
    }
    println!("\nafter 4 update rounds (write hits take the delta path):");
    print_state(&engine);

    // ---- verify & repair ----------------------------------------------------
    // Every read returns the latest version even though parity is stale.
    for lba in (0..256u64).step_by(37) {
        let (data, t) = engine.read(lba).expect("read");
        assert_eq!(data, pages[lba as usize]);
        println!("read lba {lba:3}: latest version ok ({t})");
    }

    println!("\nstale parity rows before flush: {}", engine.raid().stale_row_count());
    engine.flush().expect("flush");
    println!("stale parity rows after  flush: {}", engine.raid().stale_row_count());

    // ---- the endurance story -------------------------------------------------
    let e = engine.ssd().endurance();
    let s = engine.stats();
    println!("\nSSD endurance:");
    println!("  host writes      : {}", ByteSize::bytes(e.host_written_bytes));
    println!("  NAND writes      : {}", ByteSize::bytes(e.nand_written_bytes));
    println!("  write amp.       : {:.3}", e.waf());
    println!("  erases           : {}", e.erases);
    println!(
        "cache traffic breakdown: data {} / delta {} / metadata {} pages",
        s.ssd_data_writes, s.ssd_delta_writes, s.ssd_meta_writes
    );
    let full_page_writes = s.write_hits; // what WT would have programmed
    println!("write hits served by deltas instead of full-page programs: {full_page_writes}");
}

fn print_state(engine: &KddEngine) {
    let s = engine.stats();
    println!(
        "  requests: {} (hit ratio {:.1}%), pending parity rows: {}, staged deltas: {}",
        s.requests(),
        s.hit_ratio() * 100.0,
        engine.raid().stale_row_count(),
        engine.staged_deltas()
    );
}
