//! Failure drill: walk the engine through every §III-E recovery scenario
//! — power loss, SSD death, HDD death — verifying after each that no
//! acknowledged write was lost (RPO = 0) and that redundancy is restored.
//!
//! Run with: `cargo run --release --example failure_drill`

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::delta::content::PageMutator;
use kdd::prelude::*;

const PAGE: u32 = 4096;
const CACHE_PAGES: u64 = 256;
const WORKING_SET: u64 = 160;

fn build_engine() -> KddEngine {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64);
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((CACHE_PAGES + 64) * PAGE as u64, PAGE, 0.07);
    let geometry = CacheGeometry { total_pages: CACHE_PAGES, ways: 16, page_size: PAGE };
    KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine")
}

/// Apply a churny workload leaving plenty of delayed parity behind.
fn churn(
    engine: &mut KddEngine,
    versions: &mut [Vec<u8>],
    mutator: &mut PageMutator,
    rounds: usize,
) {
    for _ in 0..rounds {
        for lba in 0..WORKING_SET {
            let next = mutator.mutate(&versions[lba as usize]);
            engine.write(lba, &next).expect("write");
            versions[lba as usize] = next;
        }
    }
}

fn verify_all(engine: &mut KddEngine, versions: &[Vec<u8>], what: &str) {
    for (lba, v) in versions.iter().enumerate() {
        let (data, _) = engine.read(lba as u64).expect("read");
        assert_eq!(&data, v, "{what}: lba {lba} lost or corrupted");
    }
    println!("  ✓ all {} pages verified after {what}", versions.len());
}

fn main() {
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 7);
    let mut versions: Vec<Vec<u8>> = (0..WORKING_SET).map(|_| mutator.initial_page()).collect();

    // ---------------- drill 1: power failure -----------------------------
    println!("drill 1: power failure mid-burst (§III-E1)");
    let mut engine = build_engine();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    churn(&mut engine, &mut versions, &mut mutator, 2);
    println!(
        "  pulling the plug with {} stale parity rows and {} staged deltas in NVRAM",
        engine.raid().stale_row_count(),
        engine.staged_deltas()
    );
    let mut engine = engine.power_cycle().expect("power-failure recovery");
    verify_all(&mut engine, &versions, "power cycle");

    // ---------------- drill 2: SSD failure -------------------------------
    println!("drill 2: SSD device failure (§III-E2)");
    churn(&mut engine, &mut versions, &mut mutator, 1);
    let stale = engine.raid().stale_row_count();
    let t = engine.recover_from_ssd_failure().expect("ssd recovery");
    println!("  resynchronised {stale} stale rows in simulated {t}");
    assert_eq!(engine.raid().stale_row_count(), 0);
    verify_all(&mut engine, &versions, "SSD failure");
    // Redundancy is real again: lose a disk and read through parity.
    engine.raid_mut().fail_disk(3);
    let mut buf = vec![0u8; PAGE as usize];
    for lba in (0..WORKING_SET).step_by(13) {
        engine.raid_mut().read_page(lba, &mut buf).expect("degraded read");
        assert_eq!(buf, versions[lba as usize]);
    }
    println!("  ✓ degraded reads correct after SSD loss + disk loss");
    engine.raid_mut().replace_check();

    // ---------------- drill 3: HDD failure -------------------------------
    println!("drill 3: member-disk failure (§III-E2)");
    let mut engine = build_engine();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    churn(&mut engine, &mut versions, &mut mutator, 2);
    let stale = engine.raid().stale_row_count();
    let t = engine.recover_from_hdd_failure(1).expect("hdd recovery");
    println!("  parity-updated {stale} rows then rebuilt disk 1 in simulated {t}");
    assert!(engine.raid().failed_disks().is_empty());
    verify_all(&mut engine, &versions, "HDD rebuild");

    // ---------------- drill 4: injected compound faults -------------------
    // The same scenarios, but nothing is polite this time: a deterministic
    // fault plan kills devices mid-I/O at exact operation indexes.
    println!("drill 4: injected fault plan (transient + disk drop + power cut)");
    let mut engine = build_engine();
    let plan = FaultPlan::new()
        .transient(200, FaultDomain::Ssd)
        .transient(450, FaultDomain::Disk(0))
        .drop_device(900, FaultDomain::Disk(2))
        .power_loss(2200);
    let injector = FaultInjector::new(plan);
    engine.attach_fault_injector(injector.clone());
    let mut acked = 0u64;
    for round in 0..6 {
        for lba in 0..WORKING_SET {
            let next = mutator.mutate(&versions[lba as usize]);
            match engine.write(lba, &next) {
                Ok(_) => {
                    versions[lba as usize] = next;
                    acked += 1;
                }
                Err(e) if injector.power_lost() => {
                    println!("  power cut in round {round} ({e}); recovering");
                    engine = engine.power_cycle().expect("recovery under injected faults");
                }
                Err(e) => panic!("unexpected error in round {round}: {e}"),
            }
        }
    }
    let c = injector.counters();
    println!(
        "  {} faults fired ({} transient, {} drops, {} power); {} writes acked",
        c.injected, c.transient, c.device_drops, c.power_losses, acked
    );
    if let Some(&disk) = engine.raid().failed_disks().first() {
        engine.recover_from_hdd_failure(disk).expect("rebuild dropped member");
        println!("  rebuilt dropped member disk {disk}");
    }
    verify_all(&mut engine, &versions, "injected fault plan");

    println!("\nall drills passed: RPO 0 maintained through every failure");
}

/// Small extension trait so the drill can finish rebuilding after the
/// deliberate post-recovery disk failure.
trait DrillExt {
    fn replace_check(&mut self);
}

impl DrillExt for RaidArray {
    fn replace_check(&mut self) {
        self.rebuild().expect("rebuild after drill");
        assert!(self.failed_disks().is_empty());
    }
}
