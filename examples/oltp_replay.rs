//! OLTP trace replay: regenerate the paper's financial traces (Table I)
//! and compare all caching policies on hit ratio, SSD write traffic and
//! open-loop response time — a miniature of Figures 5/6/9.
//!
//! Run with: `cargo run --release --example oltp_replay [scale]`
//! (`scale` divides the Table I trace sizes; default 200.)

// Narrowing casts here are bounded by construction (page sizes, slot
// counts). See DESIGN.md "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation)]

use kdd::prelude::*;
use kdd::sim::openloop::replay_open_loop;

fn main() {
    let scale: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let model = ServiceModel::paper_default();

    println!("Table I (regenerated at 1/{scale} scale):");
    println!("{}", TraceStats::table_header());
    let traces: Vec<(PaperTrace, Trace)> =
        PaperTrace::ALL.iter().map(|&pt| (pt, pt.generate_scaled(scale, 42))).collect();
    for (pt, trace) in &traces {
        println!("{}", TraceStats::compute(trace).table_row(pt.name()));
    }

    for (pt, trace) in &traces {
        let stats = TraceStats::compute(trace);
        // Cache sized at ~15% of the trace's unique pages, like the middle
        // of the paper's sweep range.
        let cache_pages = (stats.unique_total * 15 / 100).max(256);
        let geometry = CacheGeometry {
            total_pages: cache_pages,
            ways: 64.min(cache_pages as u32),
            page_size: 4096,
        };
        let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));

        println!(
            "\n=== {} (cache {} pages, {:.0}% of unique) ===",
            pt.name(),
            cache_pages,
            100.0 * cache_pages as f64 / stats.unique_total as f64
        );
        println!(
            "{:<9} {:>9} {:>14} {:>10} {:>12} {:>12}",
            "policy", "hit%", "ssd writes", "meta%", "mean resp", "p99 resp"
        );
        for kind in [
            PolicyKind::Nossd,
            PolicyKind::Wa,
            PolicyKind::Wt,
            PolicyKind::LeavO,
            PolicyKind::Kdd(0.50),
            PolicyKind::Kdd(0.25),
            PolicyKind::Kdd(0.12),
        ] {
            let mut policy = build_policy(kind, geometry, raid, 7);
            let report = replay_open_loop(policy.as_mut(), trace, &model, 5, 1);
            let s = policy.stats();
            println!(
                "{:<9} {:>8.1}% {:>14} {:>9.2}% {:>12} {:>12}",
                report.policy,
                report.hit_ratio * 100.0,
                format!("{}", s.ssd_write_bytes(4096)),
                s.metadata_fraction() * 100.0,
                format!("{}", report.mean_response),
                format!("{}", report.p99),
            );
        }
    }
}
