//! Endurance audit: run identical churn through WT-style full-page
//! caching and KDD's delta path on the *real-byte engine*, and read the
//! wear counters off the simulated flash — the lifetime claim (§IV-A3)
//! measured end to end, FTL write amplification included.
//!
//! Run with: `cargo run --release --example endurance_audit`

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::delta::content::PageMutator;
use kdd::prelude::*;

const PAGE: u32 = 4096;
const CACHE_PAGES: u64 = 512;
const HOT_PAGES: u64 = 256;
const ROUNDS: usize = 8;

fn build_engine() -> KddEngine {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 128);
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((CACHE_PAGES + 64) * PAGE as u64, PAGE, 0.07);
    // High associativity: the hot range maps to few parity-row groups, so
    // wide sets avoid conflict evictions that would mask the delta savings.
    let geometry = CacheGeometry { total_pages: CACHE_PAGES, ways: 64, page_size: PAGE };
    KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine")
}

fn main() {
    // Three content-locality levels: the fraction of each page rewritten
    // per update (≈ the paper's KDD-50/25/12 regimes after compression).
    //
    // Deltas in the engine are computed against the *cached base* version
    // (old ⊕ current, §III-A), so between cleanings they accumulate: k
    // rewrites at per-write ratio r cost ~r·k(k+1)/2 pages of delta
    // traffic versus k full pages for write-through — the savings factor
    // is ≈ 1 − r(k+1)/2 and *degrades* with k. We therefore show both an
    // accumulating run (cleaner only wakes on thresholds) and a paced run
    // (idle cleaning between rounds resets the base), which is where the
    // paper's per-write locality model applies.
    for (label, change_fraction) in
        [("low (≈50%)", 0.45), ("medium (≈25%)", 0.20), ("high (≈12%)", 0.08)]
    {
        for (pacing, clean_each_round) in [("accumulating", false), ("idle-cleaned", true)] {
            let mut engine = build_engine();
            let mut mutator = PageMutator::new(PAGE as usize, change_fraction, 64, 99);
            let mut versions: Vec<Vec<u8>> =
                (0..HOT_PAGES).map(|_| mutator.initial_page()).collect();

            // Load phase.
            for (lba, v) in versions.iter().enumerate() {
                engine.write(lba as u64, v).unwrap();
            }
            let loaded = engine.ssd().endurance().host_written_bytes;

            // Churn phase: every hot page rewritten ROUNDS times.
            for _ in 0..ROUNDS {
                for lba in 0..HOT_PAGES {
                    let next = mutator.mutate(&versions[lba as usize]);
                    engine.write(lba, &next).unwrap();
                    versions[lba as usize] = next;
                }
                if clean_each_round {
                    let mut t = kdd::prelude::SimTime::ZERO;
                    engine.clean(&mut t).unwrap();
                }
            }
            engine.flush().unwrap();

            // Verify integrity before trusting any number.
            for lba in (0..HOT_PAGES).step_by(17) {
                let (data, _) = engine.read(lba).unwrap();
                assert_eq!(data, versions[lba as usize], "corruption at {lba}");
            }

            let e = engine.ssd().endurance();
            let s = engine.stats();
            let churn_host = e.host_written_bytes - loaded;
            // What a write-through cache would have programmed for the same
            // churn: one full page per write.
            let wt_equiv = (HOT_PAGES * ROUNDS as u64) * PAGE as u64;
            println!("content locality {label} ({pacing}):");
            println!("  churn writes to SSD      : {}", ByteSize::bytes(churn_host));
            println!("  WT would have written    : {}", ByteSize::bytes(wt_equiv));
            println!(
                "  reduction                : {:.1}%",
                100.0 * (1.0 - churn_host as f64 / wt_equiv as f64)
            );
            println!("  NAND writes (with WAF)   : {}", ByteSize::bytes(e.nand_written_bytes));
            println!("  write amplification      : {:.3}", e.waf());
            println!("  block erases             : {}", e.erases);
            println!(
                "  projected lifetime vs WT : {:.2}x",
                wt_equiv as f64 / churn_host.max(1) as f64
            );
            println!(
                "  traffic: {} data / {} delta / {} metadata pages; {} parity repairs\n",
                s.ssd_data_writes, s.ssd_delta_writes, s.ssd_meta_writes, s.parity_updates
            );
        }
    }
}
