//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no network and an empty cargo
//! registry, so real serde cannot be fetched. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as a structural marker (no `#[serde]`
//! attributes, no generic serializers), so marker traits with blanket
//! implementations are sufficient to keep every bound satisfied.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Subset of `serde::de` re-exports used by downstream bounds.
pub mod de {
    pub use crate::DeserializeOwned;
}
