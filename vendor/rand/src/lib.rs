//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an air-gapped container, so the real `rand`
//! cannot be fetched. The stub provides the small API surface the workspace
//! uses — `rngs::StdRng`, `SeedableRng::from_seed`, a `Rng` core trait and an
//! `RngExt` extension with `random`, `random_range`, and `random_bool` — all
//! fully deterministic (xoshiro256**), which is exactly what the
//! reproduction's seeded experiments need. Distribution quality is fine for
//! simulation purposes but this is NOT a cryptographic generator.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Build the generator by expanding a 64-bit seed (splitmix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix(&mut x).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            let mut x = 0x6b79_8c6e_2f5d_4a31u64;
            for w in &mut s {
                *w = splitmix(&mut x);
            }
        }
        StdRng { s }
    }
}

/// Core random-number source: the only required method is `next_u64`.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from a [`Rng`] via [`RngExt::random`].
pub trait FromRng {
    /// Draw a uniform value of this type.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience extension: the sampling helpers the workspace calls.
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let (mut a, mut b) = (rng(1), rng(2));
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0usize..=7);
            assert!(w <= 7);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut r = rng(4);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = rng(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_escaped() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
