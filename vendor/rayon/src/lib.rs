//! Offline stand-in for `rayon`.
//!
//! The air-gapped build cannot fetch the real crate, so `par_iter()` here is
//! a sequential `slice::iter()`. Everything downstream (`map`, `collect`,
//! `sum`, ...) is the std `Iterator` API, so call sites compile unchanged and
//! produce identical results — just without the parallel speed-up.

#![warn(missing_docs)]

/// Parallel-iterator entry points (sequential in this stub).
pub mod prelude {
    /// Borrowing "parallel" iteration: `par_iter()` over a collection.
    pub trait IntoParallelRefIterator<'data> {
        /// The produced item type.
        type Item: 'data;
        /// The concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate sequentially (stub for rayon's parallel iteration).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
        type Item = &'data T;
        type Iter = core::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let arr = [1u64, 2, 3];
        assert_eq!(arr.par_iter().sum::<u64>(), 6);
    }
}
