//! Offline stand-in for `criterion`.
//!
//! Provides just enough of the criterion API for `cargo bench` to compile and
//! produce rough wall-clock numbers: benchmark groups, `iter`/`iter_batched`,
//! throughput annotation, and the `criterion_group!`/`criterion_main!`
//! macros. There is no statistical analysis or history — each benchmark runs
//! a fixed number of timed iterations and prints the mean.
//!
//! Like real criterion, the harness honours `--test` (as passed by
//! `cargo bench -- --test`): every routine runs exactly once, so CI can
//! smoke-check that the benches execute without paying for timing runs.

#![warn(missing_docs)]

use std::time::Instant;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher { iters: effective_iters(iters), elapsed_ns: 0 }
    }

    /// Time `routine`, called `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

const DEFAULT_ITERS: u64 = 10;

/// True when the binary was invoked with `--test` (what
/// `cargo bench -- --test` forwards): run routines once, skip timing.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn effective_iters(requested: u64) -> u64 {
    if test_mode() {
        1
    } else {
        requested
    }
}

fn report(name: &str, iters: u64, elapsed_ns: u128, throughput: Option<Throughput>) {
    let per_iter = if iters == 0 { 0 } else { elapsed_ns / iters as u128 };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0 => {
            let mbps = b as f64 * 1e3 / per_iter as f64;
            format!("  {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(e)) if per_iter > 0 => {
            let eps = e as f64 * 1e9 / per_iter as f64;
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("bench {name:<40} {per_iter:>12} ns/iter{rate}");
}

/// Group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (mapped directly to iterations in this stub).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    /// Annotate the group's throughput per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), self.iters, b.elapsed_ns, self.throughput);
        self
    }

    /// Finish the group (no-op in this stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: DEFAULT_ITERS, throughput: None, _parent: self }
    }

    /// Run one stand-alone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(DEFAULT_ITERS);
        f(&mut b);
        report(id, DEFAULT_ITERS, b.elapsed_ns, None);
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Generated benchmark group runner.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routines() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.sample_size(5)
            .throughput(Throughput::Bytes(8))
            .bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 5);

        let mut sum = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| sum += x, BatchSize::SmallInput)
        });
        assert_eq!(sum, 2 * super::DEFAULT_ITERS);
    }
}
