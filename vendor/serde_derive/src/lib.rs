//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in an air-gapped container with an empty cargo
//! registry, so the real `serde_derive` (and its `syn`/`quote` tree) is
//! unavailable. The workspace only ever uses bare
//! `#[derive(Serialize, Deserialize)]` as a marker — the companion `serde`
//! stub provides blanket implementations — so these derives can simply
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the `serde` stub's
/// blanket impl already covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the `serde` stub's
/// blanket impl already covers every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
