//! Offline stand-in for `serde_json`.
//!
//! The real crate is unavailable in this air-gapped build. The workspace uses
//! `to_string_pretty` purely to dump result rows for humans, so rendering the
//! value's `Debug` representation (which for the row structs is close to JSON
//! and equally greppable) keeps the tooling functional without a serializer.

use std::fmt;

/// Error type mirroring `serde_json::Error`. The Debug-based encoder is
/// infallible, so this is never constructed, but callers `expect(..)` on it.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serialisation error")
    }
}

impl std::error::Error for Error {}

/// Render `value` with the alternate (`{:#?}`) Debug formatter.
///
/// Not JSON, but structurally equivalent for the plain structs this
/// workspace serialises; documented as a stub in `DESIGN.md`.
pub fn to_string_pretty<T: fmt::Debug + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:#?}"))
}

/// Render `value` with the compact Debug formatter.
pub fn to_string<T: fmt::Debug + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_debug_alternate() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string_pretty(&v).unwrap(), format!("{v:#?}"));
        assert_eq!(to_string(&v).unwrap(), "[1, 2, 3]");
    }
}
