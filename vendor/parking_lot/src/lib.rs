//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Slower than the real crate but
//! semantically equivalent for the simulator's coarse-grained locking.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free `read`/`write` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
