//! Offline stand-in for `proptest`.
//!
//! The air-gapped build cannot fetch the real crate, so this is a compact
//! generate-and-assert property harness covering the subset the workspace
//! uses: `proptest!`, `prop_oneof!`, `prop_assert*`/`prop_assume!`,
//! `Strategy`/`prop_map`/`boxed`, range and tuple strategies, `Just`,
//! `any::<T>()`, `proptest::collection::vec`, and `ProptestConfig`.
//!
//! Differences from real proptest: cases are derived from a fixed seed (fully
//! deterministic run-to-run, which the reproduction wants) and failing cases
//! are reported without shrinking — the panic message carries the generated
//! inputs via the test's own assertion text instead.

#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};
pub use test_runner::ProptestConfig;

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run a block of property tests.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, ys in proptest::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Weighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Real proptest rejects and regenerates; this stub counts the case as
/// passed, which preserves soundness (no false failures) at some coverage
/// cost on heavily-filtered properties.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![3 => 0u8..10, 1 => Just(42u8)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 5u64..9,
            f in 0.0f64..1.0,
            v in crate::collection::vec(any::<u8>(), 2..6),
            s in small(),
            (a, b) in (0u32..4, 10u32..14),
        ) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s < 10 || s == 42);
            prop_assert!(a < 4 && (10..14).contains(&b));
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 7);
        let mut b = crate::test_runner::TestRng::for_case("t", 7);
        let s = crate::collection::vec(any::<u64>(), 10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u64..5).prop_map(|v| v * 2);
        let mut rng = crate::test_runner::TestRng::for_case("m", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}
