//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `prop_map`/`boxed` require `Self: Sized` so trait objects can
/// still call `generate`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build a union from `(weight, strategy)` arms. Weights must sum > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}
