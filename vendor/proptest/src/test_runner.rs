//! Deterministic per-case RNG and run configuration.

/// Failure raised by a property body (`prop_assert!` in real proptest
/// returns this; here it is produced by explicit `return Err(...)` / `?`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Reject the current case (treated like a failure message here).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator seeded from the property name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of property `name`; identical across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
