//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw a uniform value over the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::arbitrary::any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
