//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: an exact `usize` or a range.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (inclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors of `element` with `size` elements.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}
