//! Cross-crate integration tests: the whole stack — trace generation,
//! policies, the KDD engine, the RAID, the SSD — exercised together.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::delta::content::PageMutator;
use kdd::prelude::*;

const PAGE: u32 = 4096;

fn build_engine(cache_pages: u64) -> KddEngine {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 128);
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
    let geometry = CacheGeometry {
        total_pages: cache_pages,
        ways: 16.min(cache_pages as u32),
        page_size: PAGE,
    };
    KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine")
}

#[test]
fn engine_and_raid_agree_after_heavy_churn() {
    let mut engine = build_engine(256);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 21);
    let mut versions: Vec<Vec<u8>> = (0..200u64).map(|_| mutator.initial_page()).collect();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    for round in 0..3 {
        for lba in 0..200u64 {
            if (lba + round) % 3 == 0 {
                let next = mutator.mutate(&versions[lba as usize]);
                engine.write(lba, &next).unwrap();
                versions[lba as usize] = next;
            }
        }
    }
    // Through the cache: every page current.
    for (lba, v) in versions.iter().enumerate() {
        let (data, _) = engine.read(lba as u64).unwrap();
        assert_eq!(&data, v, "cache view of {lba}");
    }
    // Settle parity, then look underneath: RAID holds the same bytes and
    // every parity row verifies.
    engine.flush().unwrap();
    assert_eq!(engine.raid().stale_row_count(), 0);
    let mut buf = vec![0u8; PAGE as usize];
    for (lba, v) in versions.iter().enumerate() {
        engine.raid_mut().read_page(lba as u64, &mut buf).unwrap();
        assert_eq!(&buf, v, "raid view of {lba}");
    }
    for row in 0..40 {
        assert!(engine.raid_mut().verify_row(row).unwrap(), "row {row}");
    }
}

#[test]
fn policies_rank_consistently_on_a_paper_trace() {
    // Figures 5/6 ordering on a regenerated Fin1: hit ratio WT ≥ KDD ≥
    // LeavO; SSD traffic LeavO > WT > KDD-50 > KDD-25 > KDD-12 > WA.
    let trace = PaperTrace::Fin1.generate_scaled(1000, 3);
    let stats = TraceStats::compute(&trace);
    let cache_pages = stats.unique_total / 5;
    let geometry = CacheGeometry {
        total_pages: cache_pages,
        ways: 64.min(cache_pages as u32),
        page_size: PAGE,
    };
    let raid = RaidModel::paper_default(trace.address_space_pages().max(1024));

    let mut results = std::collections::HashMap::new();
    for kind in PolicyKind::figure_set() {
        let mut p = build_policy(kind, geometry, raid, 11);
        p.run_trace(&trace);
        results.insert(kind.name(), (p.stats().hit_ratio(), p.stats().ssd_writes_pages()));
    }
    let hit = |n: &str| results[n].0;
    let wr = |n: &str| results[n].1;

    // KDD's hit ratio sits near WT's: below it when version space costs
    // bite, occasionally above it when pinned dirty pages pay off (the
    // paper sees both — Fig 5 vs Fig 7's Web0 discussion).
    assert!(
        (hit("WT") - hit("KDD-12%")).abs() < 0.10,
        "WT {} vs KDD-12 {}",
        hit("WT"),
        hit("KDD-12%")
    );
    assert!(hit("KDD-12%") >= hit("KDD-50%"), "locality ordering broken");
    // Stronger content locality pushes KDD decisively past LeavO (Fig 5);
    // at 50% ratio the two sit close together.
    assert!(hit("KDD-12%") > hit("LeavO"), "KDD-12 {} vs LeavO {}", hit("KDD-12%"), hit("LeavO"));
    assert!(
        hit("KDD-50%") >= hit("LeavO") - 0.06,
        "KDD-50 {} vs LeavO {}",
        hit("KDD-50%"),
        hit("LeavO")
    );

    assert!(wr("LeavO") > wr("WT"), "LeavO {} !> WT {}", wr("LeavO"), wr("WT"));
    assert!(wr("WT") > wr("KDD-50%"), "WT {} !> KDD-50 {}", wr("WT"), wr("KDD-50%"));
    assert!(wr("KDD-50%") > wr("KDD-25%"));
    assert!(wr("KDD-25%") > wr("KDD-12%"));
    assert!(wr("KDD-12%") > wr("WA"), "write-dominant: WA still least");
}

#[test]
fn trace_parsers_feed_the_simulator() {
    // SPC text → trace → policy, end to end.
    let spc_text = "\
0,0,4096,w,0.000
0,8,4096,w,0.001
0,0,4096,w,0.002
0,16,8192,r,0.003
0,0,4096,r,0.004
";
    let trace = kdd::trace::spc::parse(std::io::Cursor::new(spc_text), PAGE).unwrap();
    assert_eq!(trace.len(), 5);
    let geometry = CacheGeometry { total_pages: 64, ways: 8, page_size: PAGE };
    let raid = RaidModel::paper_default(1024);
    let mut p = build_policy(PolicyKind::Kdd(0.25), geometry, raid, 1);
    p.run_trace(&trace);
    let s = p.stats();
    assert_eq!(s.requests(), 6, "8KiB read spans two pages");
    assert_eq!(s.write_hits, 1, "rewrite of page 0");
    assert_eq!(s.read_hits, 1, "read of cached page 0");
}

#[test]
fn open_and_closed_loop_agree_on_policy_ranking() {
    let model = ServiceModel::paper_default();
    // Closed loop, write-only.
    let mut ranking = Vec::new();
    for kind in [PolicyKind::Nossd, PolicyKind::Wt, PolicyKind::Kdd(0.25)] {
        let cfg = FioConfig::paper(0.0).scaled(4096);
        let cache_pages = cfg.wss_pages * 5 / 8;
        let geometry = CacheGeometry {
            total_pages: cache_pages,
            ways: 16.min(cache_pages as u32),
            page_size: PAGE,
        };
        let raid = RaidModel::paper_default(cfg.wss_pages);
        let mut p = build_policy(kind, geometry, raid, 5);
        let mut w = FioWorkload::new(cfg, 17);
        let r = run_closed_loop(p.as_mut(), &mut w, &model, 5);
        ranking.push((kind.name(), r.mean_response));
    }
    // KDD < WT <= Nossd on pure writes.
    assert!(ranking[2].1 < ranking[1].1, "KDD !< WT: {ranking:?}");
    assert!(ranking[1].1 <= ranking[0].1 + SimTime::from_millis(2), "WT ≫ Nossd: {ranking:?}");
}

#[test]
fn ssd_wear_reflects_policy_choice_end_to_end() {
    // Run real bytes through the engine twice: once with high content
    // locality, once rewriting whole pages. The flash must age faster in
    // the second case.
    let run = |change: f64| {
        let mut engine = build_engine(256);
        let mut m = PageMutator::new(PAGE as usize, change, 128, 5);
        // 8 LBAs per 64-page stripe group so every hot page stays
        // cacheable (16 sets x 16 ways; worst case two groups share a set).
        let lbas: Vec<u64> = (0..64u64).map(|i| (i / 8) * 64 + i % 8).collect();
        let mut vs: std::collections::HashMap<u64, Vec<u8>> =
            lbas.iter().map(|&l| (l, m.initial_page())).collect();
        for &lba in &lbas {
            engine.write(lba, &vs[&lba]).unwrap();
        }
        for _ in 0..4 {
            for &lba in &lbas {
                let next = m.mutate(&vs[&lba]);
                engine.write(lba, &next).unwrap();
                vs.insert(lba, next);
            }
        }
        engine.flush().unwrap();
        engine.ssd().endurance().host_written_bytes
    };
    let local = run(0.08);
    let global = run(0.95);
    assert!(
        local * 2 < global,
        "high locality must at least halve SSD writes: {local} vs {global}"
    );
}
