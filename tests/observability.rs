//! Integration tests for the deterministic observability layer.
//!
//! These exercise the full stack through the `kdd` umbrella crate: an
//! engine with an attached [`Recorder`] must produce `kdd-obs/v1`
//! snapshots that validate, reflect real cleaner/backlog dynamics, and
//! are byte-identical across independent runs of the same seed.

use kdd::obs::{validate_snapshot, Json};
use kdd::prelude::*;

const PAGE: u32 = 4096;

/// Build the standard test engine: 5-disk RAID-5, 256-page cache.
fn build_engine() -> (KddEngine, u64) {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64);
    let capacity = layout.capacity_pages();
    let raid = RaidArray::new(layout, PAGE);
    let cache_pages = 256u64;
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * u64::from(PAGE), PAGE, 0.07);
    let geometry = CacheGeometry { total_pages: cache_pages, ways: 16, page_size: PAGE };
    let engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine");
    (engine, capacity)
}

/// Drive a short seeded paper workload through the engine.
fn drive(engine: &mut KddEngine, capacity: u64, seed: u64) {
    use kdd::delta::content::PageMutator;
    use std::collections::BTreeMap;

    let trace = PaperTrace::Fin1.generate_scaled(20, seed);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, seed ^ 0x9e37);
    let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for rec in &trace.records {
        for page in rec.pages() {
            let lba = page % capacity;
            match rec.op {
                Op::Read => {
                    engine.read(lba).expect("read");
                }
                Op::Write => {
                    let next = match versions.get(&lba) {
                        Some(prev) => mutator.mutate(prev),
                        None => mutator.initial_page(),
                    };
                    engine.write(lba, &next).expect("write");
                    versions.insert(lba, next);
                }
            }
        }
    }
}

fn observed_run(seed: u64) -> Json {
    let (mut engine, capacity) = build_engine();
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 64,
    }));
    drive(&mut engine, capacity, seed);
    engine.flush().expect("flush");
    engine.obs_snapshot().expect("recorder enabled")
}

fn gauge(doc: &Json, key: &str) -> f64 {
    doc.get("totals")
        .and_then(|t| t.get("gauges"))
        .and_then(|g| g.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN)
}

#[test]
fn snapshot_validates_and_covers_the_lifecycle() {
    let doc = observed_run(42);
    let problems = validate_snapshot(&doc);
    assert!(problems.is_empty(), "snapshot invalid: {problems:?}");

    let counter = |key: &str| {
        doc.get("totals")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(counter("obs.requests") > 0.0, "no requests observed");
    assert!(counter("cache.write_hits") > 0.0, "no write hits — delta path untested");
    assert!(counter("ssd.delta_writes") > 0.0, "no DEZ delta writes recorded");
    assert!(counter("cleaner.parity_updates") > 0.0, "cleaner never repaired parity");

    // Span ring captured real completions, including delta-path classes.
    let events = doc
        .get("spans")
        .and_then(|s| s.get("events"))
        .and_then(Json::as_arr)
        .expect("spans.events");
    assert!(!events.is_empty(), "span ring is empty");
    let classes: Vec<&str> =
        events.iter().filter_map(|e| e.get("class").and_then(Json::as_str)).collect();
    assert!(
        classes.iter().any(|c| c.starts_with("write_hit") || *c == "write_miss"),
        "no write completions in span ring: {classes:?}"
    );
    for e in events {
        let enter = e.get("enter_ns").and_then(Json::as_f64).expect("enter_ns");
        let exit = e.get("exit_ns").and_then(Json::as_f64).expect("exit_ns");
        assert!(exit >= enter, "span exits before it enters");
    }
}

#[test]
fn cleaner_backlog_gauge_returns_to_zero_after_flush() {
    let (mut engine, capacity) = build_engine();
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 64,
    }));
    drive(&mut engine, capacity, 7);

    // Mid-run the delayed-parity design must have left work behind.
    let mid = engine.obs_snapshot().expect("snapshot");
    assert!(
        gauge(&mid, "cleaner.backlog_rows") > 0.0,
        "no stale-parity backlog accumulated — write_no_parity_update path inactive"
    );
    assert!(gauge(&mid, "raid.stale_rows") > 0.0);

    engine.flush().expect("flush");
    let done = engine.obs_snapshot().expect("snapshot");
    assert_eq!(gauge(&done, "cleaner.backlog_rows"), 0.0, "backlog not drained by flush");
    assert_eq!(gauge(&done, "raid.stale_rows"), 0.0, "stale parity survived flush");
    assert_eq!(gauge(&done, "nvram.staged_deltas"), 0.0, "staging survived flush");
}

#[test]
fn seeded_replays_render_byte_identical_snapshots() {
    let a = observed_run(42).render();
    let b = observed_run(42).render();
    assert_eq!(a, b, "same seed produced different obs snapshots");

    let c = observed_run(43).render();
    assert_ne!(a, c, "different seeds produced identical snapshots");
}
