//! Integration tests for the deterministic observability layer.
//!
//! These exercise the full stack through the `kdd` umbrella crate: an
//! engine with an attached [`Recorder`] must produce `kdd-obs/v2`
//! snapshots that validate, reflect real cleaner/backlog dynamics,
//! carry per-stage latency attribution that obeys the conservation
//! invariant (a span's stage breakdown never exceeds its service
//! time), render to Perfetto-loadable trace-event JSON, and stay
//! byte-identical across independent runs of the same seed.

use kdd::obs::{trace_events, validate_snapshot, Json, Stage};
use kdd::prelude::*;
use proptest::prelude::*;

const PAGE: u32 = 4096;

/// Build the standard test engine: 5-disk RAID-5, 256-page cache.
fn build_engine() -> (KddEngine, u64) {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * 64);
    let capacity = layout.capacity_pages();
    let raid = RaidArray::new(layout, PAGE);
    let cache_pages = 256u64;
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * u64::from(PAGE), PAGE, 0.07);
    let geometry = CacheGeometry { total_pages: cache_pages, ways: 16, page_size: PAGE };
    let engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine");
    (engine, capacity)
}

/// Drive a seeded paper workload through the engine. `scale` divides
/// the paper's request counts (20 ≈ 350k fin1 requests exercises the
/// cleaner under real pressure; 200–400 keeps property tests quick
/// while still covering every dispatch path).
fn drive(engine: &mut KddEngine, capacity: u64, workload: PaperTrace, scale: u64, seed: u64) {
    use kdd::delta::content::PageMutator;
    use std::collections::BTreeMap;

    let trace = workload.generate_scaled(scale, seed);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, seed ^ 0x9e37);
    let mut versions: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for rec in &trace.records {
        for page in rec.pages() {
            let lba = page % capacity;
            match rec.op {
                Op::Read => {
                    engine.read(lba).expect("read");
                }
                Op::Write => {
                    let next = match versions.get(&lba) {
                        Some(prev) => mutator.mutate(prev),
                        None => mutator.initial_page(),
                    };
                    engine.write(lba, &next).expect("write");
                    versions.insert(lba, next);
                }
            }
        }
    }
}

fn observed_workload_run(workload: PaperTrace, scale: u64, seed: u64) -> Json {
    let (mut engine, capacity) = build_engine();
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 64,
    }));
    drive(&mut engine, capacity, workload, scale, seed);
    engine.flush().expect("flush");
    engine.obs_snapshot().expect("recorder enabled")
}

fn observed_run(seed: u64) -> Json {
    observed_workload_run(PaperTrace::Fin1, 20, seed)
}

fn gauge(doc: &Json, key: &str) -> f64 {
    doc.get("totals")
        .and_then(|t| t.get("gauges"))
        .and_then(|g| g.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN)
}

fn span_events(doc: &Json) -> &[Json] {
    doc.get("spans").and_then(|s| s.get("events")).and_then(Json::as_arr).expect("spans.events")
}

/// Sum of a span event's per-stage nanoseconds (the `stages` object).
fn stage_sum_ns(event: &Json) -> u64 {
    let Some(stages) = event.get("stages") else { return 0 };
    Stage::ALL
        .iter()
        .filter_map(|s| stages.get(s.as_str()))
        .map(|v| {
            let ns = v.as_f64().expect("stage value");
            assert!(ns.is_finite() && ns >= 0.0, "negative/NaN stage time");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ns = ns as u64;
            ns
        })
        .sum()
}

#[test]
fn snapshot_validates_and_covers_the_lifecycle() {
    let doc = observed_run(42);
    let problems = validate_snapshot(&doc);
    assert!(problems.is_empty(), "snapshot invalid: {problems:?}");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(kdd::obs::SCHEMA),
        "engine must export the current schema"
    );

    let counter = |key: &str| {
        doc.get("totals")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(counter("obs.requests") > 0.0, "no requests observed");
    assert!(counter("cache.write_hits") > 0.0, "no write hits — delta path untested");
    assert!(counter("ssd.delta_writes") > 0.0, "no DEZ delta writes recorded");
    assert!(counter("cleaner.parity_updates") > 0.0, "cleaner never repaired parity");

    // Span ring captured real completions, including delta-path classes.
    let events = span_events(&doc);
    assert!(!events.is_empty(), "span ring is empty");
    let classes: Vec<&str> =
        events.iter().filter_map(|e| e.get("class").and_then(Json::as_str)).collect();
    assert!(
        classes.iter().any(|c| c.starts_with("write_hit") || *c == "write_miss"),
        "no write completions in span ring: {classes:?}"
    );
    for e in events {
        let enter = e.get("enter_ns").and_then(Json::as_f64).expect("enter_ns");
        let exit = e.get("exit_ns").and_then(Json::as_f64).expect("exit_ns");
        assert!(exit >= enter, "span exits before it enters");
    }

    // The v2 stage table names every Stage (zero-traffic stages included)
    // and attributes real time to the delta and RAID paths.
    let stages = doc.get("stages").expect("v2 snapshot must carry a stages table");
    let stage_sum = |name: &str| {
        stages.get(name).and_then(|h| h.get("sum")).and_then(Json::as_f64).unwrap_or(f64::NAN)
    };
    for stage in Stage::ALL {
        assert!(
            stage_sum(stage.as_str()).is_finite(),
            "stage `{}` missing from stages table",
            stage.as_str()
        );
    }
    assert!(stage_sum("delta_encode") > 0.0, "no time attributed to delta encoding");
    assert!(stage_sum("raid_write") > 0.0, "no time attributed to RAID writes");
    assert!(stage_sum("cleaner_pass") > 0.0, "no background cleaner time attributed");
}

#[test]
fn cleaner_backlog_gauge_returns_to_zero_after_flush() {
    let (mut engine, capacity) = build_engine();
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 64,
    }));
    drive(&mut engine, capacity, PaperTrace::Fin1, 20, 7);

    // Mid-run the delayed-parity design must have left work behind.
    let mid = engine.obs_snapshot().expect("snapshot");
    assert!(
        gauge(&mid, "cleaner.backlog_rows") > 0.0,
        "no stale-parity backlog accumulated — write_no_parity_update path inactive"
    );
    assert!(gauge(&mid, "raid.stale_rows") > 0.0);

    engine.flush().expect("flush");
    let done = engine.obs_snapshot().expect("snapshot");
    assert_eq!(gauge(&done, "cleaner.backlog_rows"), 0.0, "backlog not drained by flush");
    assert_eq!(gauge(&done, "raid.stale_rows"), 0.0, "stale parity survived flush");
    assert_eq!(gauge(&done, "nvram.staged_deltas"), 0.0, "staging survived flush");
}

#[test]
fn seeded_replays_render_byte_identical_snapshots() {
    let docs = (observed_run(42), observed_run(42));
    let (a, b) = (docs.0.render(), docs.1.render());
    assert_eq!(a, b, "same seed produced different obs snapshots");

    // The determinism guarantee covers the stage breakdowns specifically:
    // both the aggregate stage table and every per-span attribution.
    assert_eq!(
        docs.0.get("stages").expect("stages").render(),
        docs.1.get("stages").expect("stages").render(),
        "stage tables diverged between identical seeds"
    );
    assert!(
        span_events(&docs.0).iter().any(|e| stage_sum_ns(e) > 0),
        "no span carries a stage breakdown — attribution inert"
    );

    let c = observed_run(43).render();
    assert_ne!(a, c, "different seeds produced identical snapshots");
}

/// Stage-time conservation: for every span the engine emits — request
/// or background — the sum of its per-stage nanoseconds never exceeds
/// the span's wall (simulated) duration. Checked across all four paper
/// workloads so every dispatch path (delta hits, misses, cleaner,
/// group flush) is covered.
#[test]
fn stage_times_are_conserved_across_all_paper_traces() {
    for workload in [PaperTrace::Fin1, PaperTrace::Fin2, PaperTrace::Hm0, PaperTrace::Web0] {
        let doc = observed_workload_run(workload, 200, 42);
        let mut attributed = 0u64;
        for e in span_events(&doc) {
            let enter = e.get("enter_ns").and_then(Json::as_f64).expect("enter_ns");
            let exit = e.get("exit_ns").and_then(Json::as_f64).expect("exit_ns");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let dur = (exit - enter).max(0.0) as u64;
            let sum = stage_sum_ns(e);
            assert!(
                sum <= dur,
                "{workload:?}: span at lba {} attributes {sum} ns across stages \
                 but served in {dur} ns",
                e.get("lba").and_then(Json::as_f64).unwrap_or(f64::NAN),
            );
            attributed += sum;
        }
        assert!(attributed > 0, "{workload:?}: no stage time attributed at all");

        // The exporter enforces the same invariant internally; a
        // conserving snapshot must therefore always render to a trace.
        trace_events(&doc).unwrap_or_else(|e| panic!("{workload:?}: trace export failed: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The Chrome trace-event export is well-formed for any seed and
    /// workload: the rendered document re-parses as JSON, and within
    /// each track (`tid`) the slice timestamps are monotonically
    /// non-decreasing — the property Perfetto's importer relies on.
    #[test]
    fn trace_export_is_valid_json_with_monotonic_ts(seed in 0u64..500, which in 0usize..4) {
        let workload = match which % 4 {
            0 => PaperTrace::Fin1,
            1 => PaperTrace::Fin2,
            2 => PaperTrace::Hm0,
            _ => PaperTrace::Web0,
        };
        let doc = observed_workload_run(workload, 400, seed);
        let trace = trace_events(&doc).expect("trace export");

        let rendered = trace.render();
        let reparsed = kdd::obs::json::parse(&rendered).expect("export is not valid JSON");

        let events = reparsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        prop_assert!(!events.is_empty(), "empty trace");

        let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(Json::as_str) != Some("X") {
                continue; // metadata records carry no timestamp ordering
            }
            let tid = e.get("tid").and_then(Json::as_f64).expect("tid");
            prop_assert!(tid >= 0.0 && tid.fract() == 0.0, "non-integral tid {tid}");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let tid = tid as u64;
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
            prop_assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur");
            let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
            prop_assert!(
                ts >= prev,
                "track {tid}: ts regressed from {prev} to {ts}"
            );
        }
    }
}
