//! Policy conformance: property-style tests that every caching policy
//! obeys the invariants the paper's comparison relies on, across random
//! workloads.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::prelude::*;
use kdd::util::rng::seeded_rng;
use proptest::prelude::*;
use rand::RngExt;

const PAGE: u32 = 4096;

fn all_kinds() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Nossd,
        PolicyKind::Wt,
        PolicyKind::Wa,
        PolicyKind::Wb,
        PolicyKind::LeavO,
        PolicyKind::Kdd(0.50),
        PolicyKind::Kdd(0.25),
        PolicyKind::Kdd(0.12),
    ]
}

fn run_workload(
    kind: PolicyKind,
    seed: u64,
    requests: u32,
    space: u64,
    write_frac: f64,
) -> CacheStats {
    let geometry = CacheGeometry { total_pages: 256, ways: 16, page_size: PAGE };
    let raid = RaidModel::paper_default(space.max(1024));
    let mut p = build_policy(kind, geometry, raid, seed);
    let mut rng = seeded_rng(seed);
    let zipf = kdd::util::sampler::Zipf::new(space, 0.9);
    for _ in 0..requests {
        let lba = zipf.sample(&mut rng) - 1;
        let op = if rng.random::<f64>() < write_frac { Op::Write } else { Op::Read };
        p.access(op, lba);
    }
    p.flush();
    *p.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Request accounting always balances: hits + misses == requests.
    #[test]
    fn accounting_balances(seed in 0u64..1000, write_frac in 0.0f64..1.0) {
        for kind in all_kinds() {
            let s = run_workload(kind, seed, 600, 512, write_frac);
            prop_assert_eq!(s.requests(), 600, "{}", kind.name());
            prop_assert!(s.hit_ratio() >= 0.0 && s.hit_ratio() <= 1.0);
        }
    }

    /// Nossd never touches the SSD; WA writes it only on read misses.
    #[test]
    fn bypass_policies_respect_bypass(seed in 0u64..1000) {
        let nossd = run_workload(PolicyKind::Nossd, seed, 500, 512, 0.5);
        prop_assert_eq!(nossd.ssd_writes_pages(), 0);
        prop_assert_eq!(nossd.ssd_reads, 0);
        let wa = run_workload(PolicyKind::Wa, seed, 500, 512, 0.5);
        prop_assert_eq!(wa.ssd_writes_pages(), wa.read_misses);
    }

    /// On write-heavy workloads with reuse, the paper's traffic ordering
    /// holds: WA ≤ KDD-12 ≤ KDD-25 ≤ KDD-50 ≤ WT ≤ LeavO.
    #[test]
    fn traffic_ordering_on_write_heavy(seed in 0u64..200) {
        // Working set well beyond the 256-page cache, like the paper's
        // traces vs their cache sweep; reuse still strong (zipf 0.9).
        let space = 1200u64;
        let reqs = 4000;
        let mix = 0.65; // enough reads that fills expose LeavO's capacity cost
        let wa = run_workload(PolicyKind::Wa, seed, reqs, space, mix).ssd_writes_pages();
        let k12 = run_workload(PolicyKind::Kdd(0.12), seed, reqs, space, mix).ssd_writes_pages();
        let k25 = run_workload(PolicyKind::Kdd(0.25), seed, reqs, space, mix).ssd_writes_pages();
        let k50 = run_workload(PolicyKind::Kdd(0.50), seed, reqs, space, mix).ssd_writes_pages();
        let wt = run_workload(PolicyKind::Wt, seed, reqs, space, mix).ssd_writes_pages();
        let lv = run_workload(PolicyKind::LeavO, seed, reqs, space, mix).ssd_writes_pages();
        prop_assert!(wa <= k12, "WA {} > KDD-12 {}", wa, k12);
        prop_assert!(k12 <= k25, "KDD-12 {} > KDD-25 {}", k12, k25);
        prop_assert!(k25 <= k50, "KDD-25 {} > KDD-50 {}", k25, k50);
        // At 50% delta ratio the savings are marginal (half-page deltas +
        // reclaim-induced refills), so allow noise around WT; medium and
        // high locality must undercut it cleanly.
        prop_assert!((k50 as f64) < wt as f64 * 1.05, "KDD-50 {} >> WT {}", k50, wt);
        prop_assert!(k25 < wt, "KDD-25 {} >= WT {}", k25, wt);
        prop_assert!(lv as f64 > wt as f64 * 0.98, "LeavO {} should not undercut WT {}", lv, wt);
    }

    /// KDD's foreground write path never performs a parity round on a
    /// hit, and WT always does.
    #[test]
    fn parity_rounds_per_policy(seed in 0u64..1000) {
        let geometry = CacheGeometry { total_pages: 128, ways: 16, page_size: PAGE };
        let raid = RaidModel::paper_default(4096);
        let mut kdd = build_policy(PolicyKind::Kdd(0.25), geometry, raid, seed);
        let mut wt = build_policy(PolicyKind::Wt, geometry, raid, seed);
        kdd.access(Op::Write, 7);
        wt.access(Op::Write, 7);
        let k = kdd.access(Op::Write, 7);
        let w = wt.access(Op::Write, 7);
        prop_assert!(k.hit && w.hit);
        prop_assert_eq!(k.foreground.raid_rounds, 1, "KDD hit: data write only");
        prop_assert_eq!(k.foreground.raid_reads, 0);
        prop_assert_eq!(w.foreground.raid_rounds, 2, "WT hit: full small write");
        prop_assert_eq!(w.foreground.raid_reads, 2);
    }

    /// Metadata traffic only exists for the persistent policies, and for
    /// KDD it stays a small fraction (the Figure 4 property).
    #[test]
    fn metadata_fraction_bounded(seed in 0u64..100) {
        let wt = run_workload(PolicyKind::Wt, seed, 2000, 2048, 0.5);
        prop_assert_eq!(wt.ssd_meta_writes, 0, "WT persists nothing");
        let kdd = run_workload(PolicyKind::Kdd(0.25), seed, 2000, 2048, 0.5);
        let lv = run_workload(PolicyKind::LeavO, seed, 2000, 2048, 0.5);
        prop_assert!(kdd.metadata_fraction() < 0.10, "KDD metadata {}", kdd.metadata_fraction());
        // LeavO's uncoalesced appends cost at least as much metadata.
        prop_assert!(lv.ssd_meta_writes >= kdd.ssd_meta_writes,
            "LeavO meta {} < KDD meta {}", lv.ssd_meta_writes, kdd.ssd_meta_writes);
    }
}

#[test]
fn hit_ratio_monotone_in_cache_size_for_every_policy() {
    // Bigger caches must not hit less (same workload, LRU stack property
    // holds approximately for set-associative caches with many sets).
    for kind in [PolicyKind::Wt, PolicyKind::Wa, PolicyKind::LeavO, PolicyKind::Kdd(0.25)] {
        let mut prev = -1.0f64;
        for cache_pages in [128u64, 512, 2048] {
            let geometry = CacheGeometry { total_pages: cache_pages, ways: 16, page_size: PAGE };
            let raid = RaidModel::paper_default(8192);
            let mut p = build_policy(kind, geometry, raid, 5);
            let mut rng = seeded_rng(5);
            let zipf = kdd::util::sampler::Zipf::new(4096, 0.9);
            for _ in 0..20_000 {
                let lba = zipf.sample(&mut rng) - 1;
                let op = if rng.random::<f64>() < 0.5 { Op::Write } else { Op::Read };
                p.access(op, lba);
            }
            p.flush();
            let hr = p.stats().hit_ratio();
            assert!(
                hr >= prev - 0.03,
                "{}: hit ratio fell from {prev} to {hr} at {cache_pages} pages",
                kind.name()
            );
            prev = hr;
        }
    }
}

#[test]
fn stats_severity_of_leavo_space_overhead() {
    // LeavO pins two slots per updated page; with the same geometry its
    // resident working set must be smaller than KDD's (which pins one
    // page plus a fraction of a delta page).
    let geometry = CacheGeometry { total_pages: 256, ways: 16, page_size: PAGE };
    let raid = RaidModel::paper_default(4096);
    let mut lv = build_policy(PolicyKind::LeavO, geometry, raid, 9);
    let mut kdd = build_policy(PolicyKind::Kdd(0.12), geometry, raid, 9);
    let mut rng = seeded_rng(9);
    let zipf = kdd::util::sampler::Zipf::new(600, 1.0);
    for _ in 0..30_000 {
        let lba = zipf.sample(&mut rng) - 1;
        lv.access(Op::Write, lba);
        kdd.access(Op::Write, lba);
    }
    // Steady state under pure-write pressure: LeavO's retained pages give
    // it decent hits but cost full-page programs + uncoalesced metadata;
    // KDD spends a fraction of the SSD writes for a hit ratio in the same
    // neighbourhood.
    assert!(
        kdd.stats().ssd_writes_pages() * 4 < lv.stats().ssd_writes_pages() * 3,
        "KDD-12 {} should write at least 25% less than LeavO {}",
        kdd.stats().ssd_writes_pages(),
        lv.stats().ssd_writes_pages()
    );
    // Under *pure-write* stress KDD's simple-reclaim cleaning (§III-D
    // scheme 2) periodically drops hot pages that LeavO retains, so LeavO
    // can out-hit KDD here — the paper's "victim pages are commonly cold"
    // premise needs reads in the mix (see the Fin1 integration test,
    // where KDD-12 out-hits LeavO). Keep a sanity band only.
    assert!(
        kdd.stats().hit_ratio() >= lv.stats().hit_ratio() - 0.20,
        "KDD {} vs LeavO {} hit ratio out of band",
        kdd.stats().hit_ratio(),
        lv.stats().hit_ratio()
    );
}

// ---- degraded-mode data conformance ------------------------------------

/// A minimal *data-carrying* version of each baseline's read/write path
/// (the accounting policies above never hold bytes). Just enough to check
/// the property the paper's comparison assumes: with one member disk
/// failed, every policy still returns the latest acknowledged data for
/// every LBA, cached or not.
mod degraded {
    use super::PAGE;
    use kdd::prelude::*;
    use std::collections::{HashMap, HashSet};

    enum Baseline {
        Nossd,
        Wt,
        Wb,
        Wa,
        LeavO,
    }

    struct DataPath {
        kind: Baseline,
        ssd: SsdDevice,
        raid: RaidArray,
        map: HashMap<u64, u64>, // lba -> ssd lpn (latest version)
        next_lpn: u64,
        dirty: HashSet<u64>,
    }

    impl DataPath {
        fn new(kind: Baseline) -> Self {
            let layout = Layout::new(RaidLevel::Raid5, 5, 8, 8 * 16);
            Self {
                kind,
                ssd: SsdDevice::with_logical_capacity(4096 * PAGE as u64, PAGE, 0.07),
                raid: RaidArray::new(layout, PAGE),
                map: HashMap::new(),
                next_lpn: 0,
                dirty: HashSet::new(),
            }
        }

        fn alloc(&mut self) -> u64 {
            let lpn = self.next_lpn;
            self.next_lpn += 1;
            lpn
        }

        fn write(&mut self, lba: u64, data: &[u8]) {
            match self.kind {
                Baseline::Nossd => {
                    self.raid.write_page(lba, data).unwrap();
                }
                Baseline::Wt => {
                    // Through to RAID *and* cached.
                    self.raid.write_page(lba, data).unwrap();
                    let lpn = self.map.get(&lba).copied().unwrap_or_else(|| {
                        let l = self.alloc();
                        self.map.insert(lba, l);
                        l
                    });
                    self.ssd.write_page(lpn, data).unwrap();
                }
                Baseline::Wb => {
                    // SSD only; RAID updated at flush time.
                    let lpn = self.map.get(&lba).copied().unwrap_or_else(|| {
                        let l = self.alloc();
                        self.map.insert(lba, l);
                        l
                    });
                    self.ssd.write_page(lpn, data).unwrap();
                    self.dirty.insert(lba);
                }
                Baseline::Wa => {
                    // Write-around: RAID only, and any cached copy is stale.
                    self.raid.write_page(lba, data).unwrap();
                    if let Some(lpn) = self.map.remove(&lba) {
                        self.ssd.trim_page(lpn).unwrap();
                    }
                }
                Baseline::LeavO => {
                    // Leave-old: append the new version at a fresh lpn, keep
                    // the old version resident; RAID is only updated lazily.
                    let lpn = self.alloc();
                    self.map.insert(lba, lpn);
                    self.ssd.write_page(lpn, data).unwrap();
                    self.dirty.insert(lba);
                }
            }
        }

        fn read(&mut self, lba: u64) -> Vec<u8> {
            let mut buf = vec![0u8; PAGE as usize];
            match self.map.get(&lba) {
                Some(&lpn) => self.ssd.read_page(lpn, &mut buf).map(|_| ()).unwrap(),
                None => self.raid.read_page(lba, &mut buf).map(|_| ()).unwrap(),
            }
            buf
        }

        /// Destage dirty pages so a *member* failure cannot meet stale
        /// parity (the write-back policies' recovery obligation).
        fn sync(&mut self) {
            let dirty: Vec<u64> = self.dirty.drain().collect();
            for lba in dirty {
                let lpn = self.map[&lba];
                let mut buf = vec![0u8; PAGE as usize];
                self.ssd.read_page(lpn, &mut buf).unwrap();
                self.raid.write_page(lba, &buf).unwrap();
            }
        }
    }

    /// One HDD failed → every baseline still serves the latest data for
    /// every LBA, cached and uncached, via SSD hit or degraded
    /// reconstruction.
    #[test]
    fn every_baseline_serves_correct_data_with_one_hdd_failed() {
        for kind in [Baseline::Nossd, Baseline::Wt, Baseline::Wb, Baseline::Wa, Baseline::LeavO] {
            for failed_disk in 0..5usize {
                let mut path = DataPath::new(kind_clone(&kind));
                let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
                let mut rng = kdd::util::rng::seeded_rng(42 + failed_disk as u64);
                use rand::RngExt;
                for i in 0..200u64 {
                    let lba = rng.random_range(0..48u64);
                    let mut page = vec![0u8; PAGE as usize];
                    page[..8].copy_from_slice(&(i << 8 | lba).to_le_bytes());
                    page[8..16].copy_from_slice(&rng.random::<u64>().to_le_bytes());
                    path.write(lba, &page);
                    reference.insert(lba, page);
                }
                path.sync();
                path.raid.fail_disk(failed_disk);
                for (lba, want) in &reference {
                    let got = path.read(*lba);
                    assert_eq!(
                        &got,
                        want,
                        "baseline {} lba {lba} wrong with disk {failed_disk} failed",
                        name(&kind)
                    );
                }
            }
        }
    }

    fn kind_clone(k: &Baseline) -> Baseline {
        match k {
            Baseline::Nossd => Baseline::Nossd,
            Baseline::Wt => Baseline::Wt,
            Baseline::Wb => Baseline::Wb,
            Baseline::Wa => Baseline::Wa,
            Baseline::LeavO => Baseline::LeavO,
        }
    }

    fn name(k: &Baseline) -> &'static str {
        match k {
            Baseline::Nossd => "nossd",
            Baseline::Wt => "wt",
            Baseline::Wb => "wb",
            Baseline::Wa => "wa",
            Baseline::LeavO => "leavo",
        }
    }

    /// The real KDD engine under a *dropped* member disk (injected fault,
    /// not a polite API call): after the §III-E2 recovery procedure every
    /// LBA — cached, delta-compressed, or uncached — reads back exactly.
    #[test]
    fn kdd_engine_serves_correct_data_with_one_hdd_failed() {
        for failed_disk in 0..5u32 {
            let layout = Layout::new(RaidLevel::Raid5, 5, 8, 8 * 16);
            let raid = RaidArray::new(layout, PAGE);
            let cache_pages = 64u64;
            let ssd =
                SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
            let geometry = CacheGeometry { total_pages: cache_pages, ways: 8, page_size: PAGE };
            let mut engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine");
            let injector = FaultInjector::new(
                FaultPlan::new().drop_device(150, FaultDomain::Disk(failed_disk)),
            );
            engine.attach_fault_injector(injector);

            let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
            let mut rng = kdd::util::rng::seeded_rng(1000 + failed_disk as u64);
            use rand::RngExt;
            for i in 0..250u64 {
                let lba = rng.random_range(0..48u64);
                let mut page = match reference.get(&lba) {
                    Some(v) => v.clone(),
                    None => vec![0u8; PAGE as usize],
                };
                let off = (rng.random::<u64>() as usize) % (PAGE as usize - 16);
                page[off..off + 8].copy_from_slice(&i.to_le_bytes());
                engine.write(lba, &page).expect("write survives member drop");
                reference.insert(lba, page);
            }
            let failed = engine.raid().failed_disks();
            assert_eq!(failed, vec![failed_disk as usize], "injector dropped the member");
            engine.recover_from_hdd_failure(failed_disk as usize).expect("hdd recovery");
            for (lba, want) in &reference {
                let (got, _) = engine.read(*lba).expect("degraded read");
                assert_eq!(&got, want, "kdd lba {lba} wrong with disk {failed_disk} failed");
            }
        }
    }
}
