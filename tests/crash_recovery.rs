//! Crash-recovery integration tests: randomized fault injection across
//! the full stack, checking §III-E's RPO-0 guarantee under every failure
//! the paper tolerates — and demonstrating the data-loss window the
//! paper warns about for stale parity.

// Indexing and narrowing casts here are bounds-audited (offsets from
// length-checked parses; sizes bounded by construction). See DESIGN.md
// "Static analysis & invariants".
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use kdd::delta::content::PageMutator;
use kdd::prelude::*;
use kdd::raid::array::RaidError;
use kdd::util::rng::seeded_rng;
use rand::RngExt;

const PAGE: u32 = 4096;

fn build_engine(cache_pages: u64, seed_disks: u64) -> KddEngine {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * (64 + seed_disks % 3));
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
    let geometry = CacheGeometry {
        total_pages: cache_pages,
        ways: 16.min(cache_pages as u32),
        page_size: PAGE,
    };
    KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine")
}

#[test]
fn repeated_power_cycles_never_lose_data() {
    let mut engine = build_engine(192, 0);
    let mut rng = seeded_rng(1234);
    let mut mutator = PageMutator::new(PAGE as usize, 0.12, 64, 9);
    let mut versions: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
    for cycle in 0..4 {
        // Random mixed traffic.
        for _ in 0..300 {
            let lba = rng.random_range(0..150u64);
            if rng.random_bool(0.55) {
                let next = match versions.get(&lba) {
                    Some(v) => mutator.mutate(v),
                    None => mutator.initial_page(),
                };
                engine.write(lba, &next).unwrap();
                versions.insert(lba, next);
            } else if let Some(v) = versions.get(&lba) {
                let (data, _) = engine.read(lba).unwrap();
                assert_eq!(&data, v, "cycle {cycle} pre-crash read of {lba}");
            }
        }
        // Crash and recover.
        engine = engine.power_cycle().expect("recovery");
        for (lba, v) in &versions {
            let (data, _) = engine.read(*lba).unwrap();
            assert_eq!(&data, v, "cycle {cycle}: lba {lba} lost");
        }
    }
}

#[test]
fn power_cycle_then_hdd_failure_still_recovers() {
    // Compound failure: crash first, then lose a disk.
    let mut engine = build_engine(128, 1);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 31);
    let mut versions: Vec<Vec<u8>> = (0..100u64).map(|_| mutator.initial_page()).collect();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    for lba in 0..100u64 {
        let next = mutator.mutate(&versions[lba as usize]);
        engine.write(lba, &next).unwrap();
        versions[lba as usize] = next;
    }
    let mut engine = engine.power_cycle().expect("power recovery");
    // Recovery re-synchronises every interrupted row (§III-E1), so no
    // stale parity survives a power cycle — the later disk loss can always
    // be rebuilt.
    assert_eq!(engine.raid().stale_row_count(), 0);
    engine.recover_from_hdd_failure(2).expect("hdd recovery");
    let mut buf = vec![0u8; PAGE as usize];
    for (lba, v) in versions.iter().enumerate() {
        engine.raid_mut().read_page(lba as u64, &mut buf).unwrap();
        assert_eq!(&buf, v, "lba {lba} after compound failure");
    }
}

#[test]
fn stale_parity_window_is_detected_not_silently_corrupted() {
    // The scenario the paper warns about for LeavO (§I): SSD gone, RAID
    // not yet resynchronised, and a disk dies. Our RAID refuses the
    // degraded read instead of fabricating garbage.
    let mut engine = build_engine(128, 2);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 77);
    let v0 = mutator.initial_page();
    engine.write(0, &v0).unwrap();
    let v1 = mutator.mutate(&v0);
    engine.write(0, &v1).unwrap(); // stale parity on row 0
    let row = engine.raid().layout().row_of(0);
    assert!(engine.raid().is_stale(row));

    // Disk holding a *different* member of the row dies before resync.
    let peer_lba = engine.raid().layout().row_lpns(row)[1];
    let peer_disk = engine.raid().layout().locate(peer_lba).disk;
    engine.raid_mut().fail_disk(peer_disk);
    let mut buf = vec![0u8; PAGE as usize];
    let err = engine.raid_mut().read_page(peer_lba, &mut buf).unwrap_err();
    assert_eq!(err, RaidError::StaleParity { row });

    // KDD's answer: parity_update first (the cleaner), then the read works.
    let mut t = SimTime::ZERO;
    engine.clean(&mut t).expect("clean with failed peer");
    engine.raid_mut().read_page(peer_lba, &mut buf).expect("degraded read after repair");
}

#[test]
fn ssd_failure_mid_churn_preserves_every_ack() {
    let mut engine = build_engine(160, 3);
    let mut rng = seeded_rng(777);
    let mut mutator = PageMutator::new(PAGE as usize, 0.2, 64, 13);
    let mut versions: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
    for _ in 0..500 {
        let lba = rng.random_range(0..120u64);
        let next = match versions.get(&lba) {
            Some(v) => mutator.mutate(v),
            None => mutator.initial_page(),
        };
        engine.write(lba, &next).unwrap();
        versions.insert(lba, next);
    }
    engine.recover_from_ssd_failure().expect("ssd recovery");
    // Every acknowledged write must be readable; the cache is cold but
    // the data is intact (the RPO-0 property WT/KDD share, §II-B).
    for (lba, v) in &versions {
        let (data, _) = engine.read(*lba).unwrap();
        assert_eq!(&data, v, "lba {lba} violated RPO 0");
    }
    // Parity must verify everywhere.
    for row in 0..32 {
        assert!(engine.raid_mut().verify_row(row).unwrap(), "row {row} unsynced");
    }
}

#[test]
fn recovery_is_idempotent() {
    // Two consecutive power cycles with no traffic in between must agree.
    let mut engine = build_engine(96, 4);
    let mut mutator = PageMutator::new(PAGE as usize, 0.1, 32, 3);
    let mut versions: Vec<Vec<u8>> = (0..64u64).map(|_| mutator.initial_page()).collect();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    for lba in (0..64u64).step_by(2) {
        let next = mutator.mutate(&versions[lba as usize]);
        engine.write(lba, &next).unwrap();
        versions[lba as usize] = next;
    }
    let engine = engine.power_cycle().expect("first recovery");
    let pending_after_first = engine.pending_row_count();
    let mut engine = engine.power_cycle().expect("second recovery");
    assert_eq!(engine.pending_row_count(), pending_after_first);
    for (lba, v) in versions.iter().enumerate() {
        let (data, _) = engine.read(lba as u64).unwrap();
        assert_eq!(&data, v, "lba {lba} after double recovery");
    }
}

// ---- deterministic fault injection ------------------------------------

/// Small, cheap engine for the exhaustive sweep (512-byte pages keep each
/// of the hundreds of crash/recover iterations fast).
const SPS: u32 = 512;

fn small_engine() -> (KddEngine, FaultInjector) {
    let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 32);
    let raid = RaidArray::new(layout, SPS);
    let ssd = SsdDevice::with_logical_capacity((96 + 64) * SPS as u64, SPS, 0.07);
    let geometry = CacheGeometry { total_pages: 96, ways: 8, page_size: SPS };
    let mut engine = KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine");
    let injector = FaultInjector::none();
    engine.attach_fault_injector(injector.clone());
    (engine, injector)
}

fn small_engine_with(plan: FaultPlan) -> (KddEngine, FaultInjector) {
    let (mut engine, _) = {
        let layout = Layout::new(RaidLevel::Raid5, 5, 4, 4 * 32);
        let raid = RaidArray::new(layout, SPS);
        let ssd = SsdDevice::with_logical_capacity((96 + 64) * SPS as u64, SPS, 0.07);
        let geometry = CacheGeometry { total_pages: 96, ways: 8, page_size: SPS };
        (KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine"), ())
    };
    let injector = FaultInjector::new(plan);
    engine.attach_fault_injector(injector.clone());
    (engine, injector)
}

/// A short deterministic workload. Versions are recorded in `acked` only
/// after the engine acknowledged the write; on error the attempted write
/// is returned so the caller knows which lba may legitimately hold either
/// version.
fn sweep_workload(
    engine: &mut KddEngine,
    acked: &mut std::collections::BTreeMap<u64, Vec<u8>>,
) -> Result<(), (u64, Vec<u8>)> {
    let mut mutator = PageMutator::new(SPS as usize, 0.15, 16, 5);
    for i in 0..36u64 {
        let lba = (i * 7) % 20; // revisits produce write hits → delta path
        let next = match acked.get(&lba) {
            Some(v) => mutator.mutate(v),
            None => mutator.initial_page(),
        };
        if engine.write(lba, &next).is_err() {
            return Err((lba, next));
        }
        acked.insert(lba, next);
        if i % 5 == 4 && engine.read(lba).is_err() {
            return Err((lba, acked[&lba].clone()));
        }
    }
    Ok(())
}

/// The tentpole acceptance test: power loss at *every* op index of a
/// deterministic workload; after each crash, recovery must succeed and no
/// acknowledged write may be lost (RPO 0). The one write in flight at the
/// cut may read back as either its old or its new version — never
/// anything else.
#[test]
fn exhaustive_power_loss_sweep_has_zero_acked_loss() {
    // Dry run to size the op space.
    let (mut engine, injector) = small_engine();
    let mut acked = std::collections::BTreeMap::new();
    sweep_workload(&mut engine, &mut acked).expect("fault-free run");
    engine.flush().expect("flush");
    let total_ops = injector.op_count();
    assert!(total_ops > 100, "workload too small to sweep ({total_ops} ops)");

    for cut in 0..total_ops {
        let (mut engine, injector) = small_engine_with(FaultPlan::new().power_loss(cut));
        let mut acked = std::collections::BTreeMap::new();
        let inflight = sweep_workload(&mut engine, &mut acked).err();
        if inflight.is_none() {
            // The cut landed in flush (or never fired): force it there.
            let _ = engine.flush();
        }
        assert!(
            injector.power_lost() || injector.counters().power_losses == 0,
            "cut {cut}: power loss fired but engine kept going"
        );
        let mut engine = engine.power_cycle().unwrap_or_else(|e| {
            panic!("cut {cut}: recovery failed: {e}");
        });
        for (lba, v) in &acked {
            let (data, _) =
                engine.read(*lba).unwrap_or_else(|e| panic!("cut {cut}: read {lba} failed: {e}"));
            if let Some((cut_lba, attempted)) = &inflight {
                if lba == cut_lba {
                    assert!(
                        &data == v || &data == attempted,
                        "cut {cut}: lba {lba} is neither the acked nor the attempted version"
                    );
                    continue;
                }
            }
            assert_eq!(&data, v, "cut {cut}: acked write to lba {lba} lost");
        }
        // The engine must be fully operational again.
        let extra = vec![0xC7u8; SPS as usize];
        engine.write(300, &extra).unwrap_or_else(|e| panic!("cut {cut}: post-recovery write: {e}"));
        let (back, _) = engine.read(300).unwrap();
        assert_eq!(back, extra, "cut {cut}: post-recovery write lost");
    }
}

/// The batched analogue of [`sweep_workload`]: the same deterministic
/// traffic submitted as four-write group commits via
/// [`KddEngine::write_batch`]. A batch is recorded in `acked` only after
/// the whole group was acknowledged; on error the entire attempted batch
/// is returned — each of its pages may legitimately hold either its old
/// or its attempted version after recovery, never anything else.
fn batched_sweep_workload(
    engine: &mut KddEngine,
    acked: &mut std::collections::BTreeMap<u64, Vec<u8>>,
) -> Result<(), Vec<(u64, Vec<u8>)>> {
    let mut mutator = PageMutator::new(SPS as usize, 0.15, 16, 5);
    for round in 0..9u64 {
        let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
        for j in 0..4u64 {
            let i = round * 4 + j;
            let lba = (i * 7) % 20; // revisits produce write hits → delta path
            let next = match acked.get(&lba) {
                Some(v) => mutator.mutate(v),
                None => mutator.initial_page(),
            };
            batch.push((lba, next));
        }
        let reqs: Vec<WriteRequest<'_>> =
            batch.iter().map(|(lba, data)| WriteRequest { lba: *lba, data }).collect();
        if engine.write_batch(&reqs).is_err() {
            return Err(batch);
        }
        for (lba, v) in batch {
            acked.insert(lba, v);
        }
        if round % 3 == 2 && engine.read((round * 28) % 20).is_err() {
            return Err(Vec::new()); // reads mutate nothing
        }
    }
    Ok(())
}

/// Group-commit crash acceptance: power loss at *every* op index of the
/// batched workload. Deferring metalog page persistence to the end of a
/// batch must not widen the loss window — after recovery every
/// acknowledged group is intact (RPO 0), and only pages of the one torn
/// batch may read back as either version.
#[test]
fn exhaustive_power_loss_sweep_over_group_commits_has_zero_acked_loss() {
    // Dry run to size the op space.
    let (mut engine, injector) = small_engine();
    let mut acked = std::collections::BTreeMap::new();
    batched_sweep_workload(&mut engine, &mut acked).expect("fault-free run");
    engine.flush().expect("flush");
    let total_ops = injector.op_count();
    assert!(total_ops > 100, "workload too small to sweep ({total_ops} ops)");

    for cut in 0..total_ops {
        let (mut engine, injector) = small_engine_with(FaultPlan::new().power_loss(cut));
        let mut acked = std::collections::BTreeMap::new();
        let torn = batched_sweep_workload(&mut engine, &mut acked).err();
        if torn.is_none() {
            // The cut landed in flush (or never fired): force it there.
            let _ = engine.flush();
        }
        assert!(
            injector.power_lost() || injector.counters().power_losses == 0,
            "cut {cut}: power loss fired but engine kept going"
        );
        let torn: std::collections::BTreeMap<u64, Vec<u8>> =
            torn.unwrap_or_default().into_iter().collect();
        let mut engine = engine.power_cycle().unwrap_or_else(|e| {
            panic!("cut {cut}: recovery failed: {e}");
        });
        for (lba, v) in &acked {
            let (data, _) =
                engine.read(*lba).unwrap_or_else(|e| panic!("cut {cut}: read {lba} failed: {e}"));
            if let Some(attempted) = torn.get(lba) {
                assert!(
                    &data == v || &data == attempted,
                    "cut {cut}: lba {lba} is neither the acked nor the attempted version"
                );
                continue;
            }
            assert_eq!(&data, v, "cut {cut}: acked group commit to lba {lba} lost");
        }
        // The engine must be fully operational again — including batches.
        let extra = vec![0x5Du8; SPS as usize];
        let reqs =
            [WriteRequest { lba: 300, data: &extra }, WriteRequest { lba: 301, data: &extra }];
        engine.write_batch(&reqs).unwrap_or_else(|e| panic!("cut {cut}: post-recovery batch: {e}"));
        let (back, _) = engine.read(301).unwrap();
        assert_eq!(back, extra, "cut {cut}: post-recovery batch lost");
    }
}

/// Acceptance: the same seeded fault plan, replayed twice, produces
/// byte-identical engine state, stats, and injected-fault history.
#[test]
fn seeded_fault_plan_replays_identically() {
    let run = |seed: u64| {
        let plan = FaultPlan::randomized(seed, 600, 5, 6);
        let (mut engine, injector) = small_engine_with(plan);
        let mut acked = std::collections::BTreeMap::new();
        let outcome = sweep_workload(&mut engine, &mut acked);
        let flush = engine.flush().map(|t| t.0).map_err(|e| e.to_string());
        let stats = *engine.stats();
        let mut contents: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
        for lba in 0..20u64 {
            contents.push((lba, engine.read(lba).ok().map(|(d, _)| d)));
        }
        (
            outcome.err(),
            flush,
            stats,
            contents,
            injector.op_count(),
            injector.events(),
            injector.counters(),
        )
    };
    let a = run(0xD15EA5E);
    let b = run(0xD15EA5E);
    assert_eq!(a.2, b.2, "stats diverged between replays");
    assert_eq!(a.5, b.5, "fault event history diverged");
    assert_eq!(a, b, "engine state diverged between identical replays");
    // A different seed must produce a different fault schedule.
    let c = run(0xBADC0DE);
    assert_ne!(a.5, c.5, "different seeds produced identical fault schedules");
}

/// Run the seeded fault workload to completion and fold every observable
/// piece of engine state into one FNV-1a digest: workload outcome, stats,
/// staging counters, page contents, the injected-fault history, and the
/// rendered `kdd-obs/v2` snapshot (spans, stage breakdowns, timeseries,
/// and wear included).
/// All iteration here is over `BTreeMap`s and `Vec`s, so a digest
/// difference is a real divergence, not map-order noise.
fn replay_digest(seed: u64) -> u64 {
    let plan = FaultPlan::randomized(seed, 600, 5, 6);
    let (mut engine, injector) = small_engine_with(plan);
    engine.attach_recorder(Recorder::new(RecorderConfig {
        sample_interval: SimTime::from_secs(1),
        ring_capacity: 64,
    }));
    let mut acked = std::collections::BTreeMap::new();
    let outcome = sweep_workload(&mut engine, &mut acked);
    let flush = engine.flush().map(|t| t.0).map_err(|e| e.to_string());

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let fold = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    fold(&mut h, format!("{outcome:?}|{flush:?}").as_bytes());
    fold(&mut h, format!("{:?}", engine.stats()).as_bytes());
    fold(
        &mut h,
        format!("{}|{}|{:?}", engine.pending_row_count(), engine.staged_deltas(), engine.mode())
            .as_bytes(),
    );
    for lba in 0..20u64 {
        match engine.read(lba) {
            Ok((data, _)) => fold(&mut h, &data),
            Err(e) => fold(&mut h, format!("read {lba}: {e}").as_bytes()),
        }
    }
    fold(&mut h, format!("{:?}|{:?}", injector.events(), injector.counters()).as_bytes());
    let obs = engine.obs_snapshot().expect("recorder attached above");
    fold(&mut h, obs.render().as_bytes());
    h
}

/// Acceptance: the same seeded fault plan replayed in two *separate
/// processes* produces byte-identical engine state. The in-process replay
/// test above cannot catch per-process nondeterminism (RandomState map
/// ordering, anything keyed off ASLR or wall clock), so this re-invokes
/// the test binary twice as a child with a digest-only protocol and
/// compares the results.
#[test]
fn seeded_replay_is_byte_identical_across_processes() {
    const CHILD_ENV: &str = "KDD_CRASH_RECOVERY_REPLAY_CHILD";
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("replay-digest: {:#018x}", replay_digest(0xD15_EA5E));
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        let out = std::process::Command::new(&exe)
            .args([
                "--test-threads",
                "1",
                "--exact",
                "seeded_replay_is_byte_identical_across_processes",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn replay child");
        assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // The libtest harness may splice the digest into its own "test ..."
        // line, so match by substring rather than line prefix.
        stdout
            .split("replay-digest: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no digest in child output:\n{stdout}"))
    };
    let a = spawn();
    let b = spawn();
    assert_eq!(a, b, "engine state diverged between identical replays in separate processes");
    // Both children must also agree with this process's own replay.
    let here = format!("{:#018x}", replay_digest(0xD15_EA5E));
    assert_eq!(a, here, "child digest diverged from in-process replay");
}

/// Transient faults on any device are absorbed by the engine's
/// retry-once policy and surfaced in the stats.
#[test]
fn transient_faults_are_retried_and_counted() {
    let plan = FaultPlan::new()
        .transient(3, FaultDomain::Ssd)
        .transient(40, FaultDomain::Disk(1))
        .transient(80, FaultDomain::Ssd);
    let (mut engine, injector) = small_engine_with(plan);
    let mut acked = std::collections::BTreeMap::new();
    sweep_workload(&mut engine, &mut acked).expect("transient faults must not surface");
    for (lba, v) in &acked {
        let (data, _) = engine.read(*lba).unwrap();
        assert_eq!(&data, v);
    }
    assert_eq!(injector.counters().transient, 3, "all planned faults fired");
    assert!(engine.stats().fault_retries >= 1, "retries must be counted");
    assert!(engine.stats().faults_observed >= 1);
}

/// A persistent SSD fault mid-churn degrades gracefully: the engine
/// resyncs the RAID (RPO 0), and with no working spare it serves
/// pass-through from the array.
#[test]
fn persistent_ssd_fault_falls_back_to_pass_through() {
    let (mut engine, injector) =
        small_engine_with(FaultPlan::new().persistent(50, FaultDomain::Ssd));
    let mut acked = std::collections::BTreeMap::new();
    // The workload may observe the fault on the exact faulted op, but the
    // engine's fallback keeps the public API available.
    let _ = sweep_workload(&mut engine, &mut acked);
    assert!(injector.is_dead(FaultDomain::Ssd), "persistent fault survives replacement");
    assert_eq!(engine.mode(), EngineMode::PassThrough);
    assert!(engine.stats().fault_fallbacks >= 1);
    // Every acked write is still served — straight from RAID.
    for (lba, v) in &acked {
        let (data, _) = engine.read(*lba).unwrap();
        assert_eq!(&data, v, "lba {lba} lost in pass-through fallback");
    }
    // And new writes keep working.
    let fresh = vec![0x3Au8; SPS as usize];
    engine.write(7, &fresh).unwrap();
    let (back, _) = engine.read(7).unwrap();
    assert_eq!(back, fresh);
}

/// A dropped member disk mid-churn: reads reconstruct degraded, rebuild
/// restores redundancy, and no acked write is lost.
#[test]
fn member_drop_mid_churn_degrades_and_rebuilds() {
    let (mut engine, _inj) =
        small_engine_with(FaultPlan::new().drop_device(60, FaultDomain::Disk(2)));
    let mut acked = std::collections::BTreeMap::new();
    let inflight = sweep_workload(&mut engine, &mut acked).err();
    // KDD's §III-E2 answer: parity-update everything, then rebuild.
    let failed = engine.raid().failed_disks();
    if !failed.is_empty() {
        engine.recover_from_hdd_failure(failed[0]).expect("hdd recovery");
    }
    for (lba, v) in &acked {
        if let Some((cut_lba, attempted)) = &inflight {
            if lba == cut_lba {
                let (data, _) = engine.read(*lba).unwrap();
                assert!(&data == v || &data == attempted);
                continue;
            }
        }
        let (data, _) = engine.read(*lba).unwrap();
        assert_eq!(&data, v, "lba {lba} lost across member drop + rebuild");
    }
}
