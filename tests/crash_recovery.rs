//! Crash-recovery integration tests: randomized fault injection across
//! the full stack, checking §III-E's RPO-0 guarantee under every failure
//! the paper tolerates — and demonstrating the data-loss window the
//! paper warns about for stale parity.

use kdd::delta::content::PageMutator;
use kdd::prelude::*;
use kdd::raid::array::RaidError;
use kdd::util::rng::seeded_rng;
use rand::RngExt;

const PAGE: u32 = 4096;

fn build_engine(cache_pages: u64, seed_disks: u64) -> KddEngine {
    let layout = Layout::new(RaidLevel::Raid5, 5, 16, 16 * (64 + seed_disks % 3));
    let raid = RaidArray::new(layout, PAGE);
    let ssd = SsdDevice::with_logical_capacity((cache_pages + 64) * PAGE as u64, PAGE, 0.07);
    let geometry = CacheGeometry {
        total_pages: cache_pages,
        ways: 16.min(cache_pages as u32),
        page_size: PAGE,
    };
    KddEngine::new(KddConfig::new(geometry), ssd, raid).expect("engine")
}

#[test]
fn repeated_power_cycles_never_lose_data() {
    let mut engine = build_engine(192, 0);
    let mut rng = seeded_rng(1234);
    let mut mutator = PageMutator::new(PAGE as usize, 0.12, 64, 9);
    let mut versions: std::collections::HashMap<u64, Vec<u8>> = Default::default();
    for cycle in 0..4 {
        // Random mixed traffic.
        for _ in 0..300 {
            let lba = rng.random_range(0..150u64);
            if rng.random_bool(0.55) {
                let next = match versions.get(&lba) {
                    Some(v) => mutator.mutate(v),
                    None => mutator.initial_page(),
                };
                engine.write(lba, &next).unwrap();
                versions.insert(lba, next);
            } else if let Some(v) = versions.get(&lba) {
                let (data, _) = engine.read(lba).unwrap();
                assert_eq!(&data, v, "cycle {cycle} pre-crash read of {lba}");
            }
        }
        // Crash and recover.
        engine = engine.power_cycle().expect("recovery");
        for (lba, v) in &versions {
            let (data, _) = engine.read(*lba).unwrap();
            assert_eq!(&data, v, "cycle {cycle}: lba {lba} lost");
        }
    }
}

#[test]
fn power_cycle_then_hdd_failure_still_recovers() {
    // Compound failure: crash first, then lose a disk.
    let mut engine = build_engine(128, 1);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 31);
    let mut versions: Vec<Vec<u8>> = (0..100u64).map(|_| mutator.initial_page()).collect();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    for lba in 0..100u64 {
        let next = mutator.mutate(&versions[lba as usize]);
        engine.write(lba, &next).unwrap();
        versions[lba as usize] = next;
    }
    let mut engine = engine.power_cycle().expect("power recovery");
    assert!(engine.raid().stale_row_count() > 0 || engine.pending_row_count() == 0);
    engine.recover_from_hdd_failure(2).expect("hdd recovery");
    let mut buf = vec![0u8; PAGE as usize];
    for (lba, v) in versions.iter().enumerate() {
        engine.raid_mut().read_page(lba as u64, &mut buf).unwrap();
        assert_eq!(&buf, v, "lba {lba} after compound failure");
    }
}

#[test]
fn stale_parity_window_is_detected_not_silently_corrupted() {
    // The scenario the paper warns about for LeavO (§I): SSD gone, RAID
    // not yet resynchronised, and a disk dies. Our RAID refuses the
    // degraded read instead of fabricating garbage.
    let mut engine = build_engine(128, 2);
    let mut mutator = PageMutator::new(PAGE as usize, 0.15, 64, 77);
    let v0 = mutator.initial_page();
    engine.write(0, &v0).unwrap();
    let v1 = mutator.mutate(&v0);
    engine.write(0, &v1).unwrap(); // stale parity on row 0
    let row = engine.raid().layout().row_of(0);
    assert!(engine.raid().is_stale(row));

    // Disk holding a *different* member of the row dies before resync.
    let peer_lba = engine.raid().layout().row_lpns(row)[1];
    let peer_disk = engine.raid().layout().locate(peer_lba).disk;
    engine.raid_mut().fail_disk(peer_disk);
    let mut buf = vec![0u8; PAGE as usize];
    let err = engine.raid_mut().read_page(peer_lba, &mut buf).unwrap_err();
    assert_eq!(err, RaidError::StaleParity { row });

    // KDD's answer: parity_update first (the cleaner), then the read works.
    let mut t = SimTime::ZERO;
    engine.clean(&mut t).expect("clean with failed peer");
    engine.raid_mut().read_page(peer_lba, &mut buf).expect("degraded read after repair");
}

#[test]
fn ssd_failure_mid_churn_preserves_every_ack() {
    let mut engine = build_engine(160, 3);
    let mut rng = seeded_rng(777);
    let mut mutator = PageMutator::new(PAGE as usize, 0.2, 64, 13);
    let mut versions: std::collections::HashMap<u64, Vec<u8>> = Default::default();
    for _ in 0..500 {
        let lba = rng.random_range(0..120u64);
        let next = match versions.get(&lba) {
            Some(v) => mutator.mutate(v),
            None => mutator.initial_page(),
        };
        engine.write(lba, &next).unwrap();
        versions.insert(lba, next);
    }
    engine.recover_from_ssd_failure().expect("ssd recovery");
    // Every acknowledged write must be readable; the cache is cold but
    // the data is intact (the RPO-0 property WT/KDD share, §II-B).
    for (lba, v) in &versions {
        let (data, _) = engine.read(*lba).unwrap();
        assert_eq!(&data, v, "lba {lba} violated RPO 0");
    }
    // Parity must verify everywhere.
    for row in 0..32 {
        assert!(engine.raid_mut().verify_row(row).unwrap(), "row {row} unsynced");
    }
}

#[test]
fn recovery_is_idempotent() {
    // Two consecutive power cycles with no traffic in between must agree.
    let mut engine = build_engine(96, 4);
    let mut mutator = PageMutator::new(PAGE as usize, 0.1, 32, 3);
    let mut versions: Vec<Vec<u8>> = (0..64u64).map(|_| mutator.initial_page()).collect();
    for (lba, v) in versions.iter().enumerate() {
        engine.write(lba as u64, v).unwrap();
    }
    for lba in (0..64u64).step_by(2) {
        let next = mutator.mutate(&versions[lba as usize]);
        engine.write(lba, &next).unwrap();
        versions[lba as usize] = next;
    }
    let engine = engine.power_cycle().expect("first recovery");
    let pending_after_first = engine.pending_row_count();
    let mut engine = engine.power_cycle().expect("second recovery");
    assert_eq!(engine.pending_row_count(), pending_after_first);
    for (lba, v) in versions.iter().enumerate() {
        let (data, _) = engine.read(lba as u64).unwrap();
        assert_eq!(&data, v, "lba {lba} after double recovery");
    }
}
